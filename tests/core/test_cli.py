"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.graph.io import read_edgelist, write_edgelist
from repro.graph.generators import planted_partition


@pytest.fixture
def graph_file(tmp_path):
    g = planted_partition(2, 6, 0.8, 0.1, seed=1)
    path = tmp_path / "g.edges"
    write_edgelist(path, g)
    return path, g


class TestGenerate:
    def test_writes_graph(self, tmp_path, capsys):
        out = tmp_path / "gen.edges"
        rc = main(["generate", "--family", "grid", "--n", "16", "--out", str(out)])
        assert rc == 0
        g = read_edgelist(out)
        assert g.n == 16
        assert "wrote grid graph" in capsys.readouterr().out

    def test_unknown_family(self, tmp_path, capsys):
        rc = main(
            ["generate", "--family", "nope", "--n", "9", "--out", str(tmp_path / "x")]
        )
        assert rc == 2
        assert "unknown family" in capsys.readouterr().err


class TestSolve:
    def test_baseline_method(self, graph_file, capsys):
        path, g = graph_file
        rc = main(
            [
                "solve",
                "--graph",
                str(path),
                "--degrees",
                "2,2",
                "--cm",
                "5,1,0",
                "--method",
                "greedy",
                "--quiet",
            ]
        )
        assert rc == 0
        assert "cost=" in capsys.readouterr().out

    def test_hgp_with_json_output(self, graph_file, tmp_path, capsys):
        path, g = graph_file
        out = tmp_path / "pin.json"
        rc = main(
            [
                "solve",
                "--graph",
                str(path),
                "--degrees",
                "2,2",
                "--cm",
                "5,1,0",
                "--method",
                "hgp",
                "--n-trees",
                "2",
                "--seed",
                "0",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["format"] == "repro-placement-v1"
        assert len(payload["leaf_of"]) == g.n
        report = capsys.readouterr().out
        assert "L0.0" in report  # ASCII tree printed

    def test_demands_file(self, graph_file, tmp_path, capsys):
        path, g = graph_file
        dfile = tmp_path / "d.txt"
        dfile.write_text("\n".join(["0.2"] * g.n))
        rc = main(
            [
                "solve",
                "--graph",
                str(path),
                "--degrees",
                "4",
                "--cm",
                "1,0",
                "--demands",
                str(dfile),
                "--method",
                "round_robin",
                "--quiet",
            ]
        )
        assert rc == 0

    def test_demands_mismatch(self, graph_file, tmp_path, capsys):
        path, _g = graph_file
        dfile = tmp_path / "d.txt"
        dfile.write_text("0.2\n0.2\n")
        rc = main(
            [
                "solve",
                "--graph",
                str(path),
                "--degrees",
                "4",
                "--cm",
                "1,0",
                "--demands",
                str(dfile),
                "--quiet",
            ]
        )
        assert rc == 2
        assert "demands file" in capsys.readouterr().err

    def test_missing_graph(self, capsys):
        rc = main(
            [
                "solve",
                "--graph",
                "/does/not/exist",
                "--degrees",
                "2",
                "--cm",
                "1,0",
            ]
        )
        assert rc == 2

    def test_unknown_method(self, graph_file, capsys):
        path, _g = graph_file
        rc = main(
            [
                "solve",
                "--graph",
                str(path),
                "--degrees",
                "2,2",
                "--cm",
                "5,1,0",
                "--method",
                "sorcery",
            ]
        )
        assert rc == 2
        assert "unknown method" in capsys.readouterr().err

    def test_metis_input(self, tmp_path, capsys):
        from repro.graph.io import write_metis

        g = planted_partition(2, 4, 0.9, 0.2, seed=2)
        path = tmp_path / "g.graph"
        write_metis(path, g, weight_scale=1.0)
        rc = main(
            [
                "solve",
                "--graph",
                str(path),
                "--degrees",
                "2,2",
                "--cm",
                "5,1,0",
                "--method",
                "greedy",
                "--quiet",
            ]
        )
        assert rc == 0

    def test_hgp_feasible_method(self, graph_file, capsys):
        path, _g = graph_file
        rc = main(
            [
                "solve",
                "--graph",
                str(path),
                "--degrees",
                "2,2",
                "--cm",
                "5,1,0",
                "--method",
                "hgp_feasible",
                "--n-trees",
                "2",
                "--quiet",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cost=" in out


class TestSolveArtifacts:
    def test_dot_and_taskset_outputs(self, graph_file, tmp_path, capsys):
        path, g = graph_file
        dot = tmp_path / "h.dot"
        pin = tmp_path / "pin.sh"
        rc = main(
            [
                "solve",
                "--graph",
                str(path),
                "--degrees",
                "2,2",
                "--cm",
                "5,1,0",
                "--method",
                "greedy",
                "--dot",
                str(dot),
                "--taskset",
                str(pin),
                "--cpus-per-leaf",
                "2",
                "--quiet",
            ]
        )
        assert rc == 0
        assert dot.read_text().startswith("graph H {")
        script = pin.read_text()
        assert script.startswith("#!/bin/sh")
        assert script.count("taskset -a -cp") == g.n


class TestCacheCommands:
    @pytest.fixture(autouse=True)
    def fresh_cache(self, monkeypatch):
        from repro.cache import reset_cache

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DISABLE", raising=False)
        reset_cache()
        yield
        reset_cache()

    def _solve_args(self, path):
        return [
            "solve",
            "--graph",
            str(path),
            "--degrees",
            "2,2",
            "--cm",
            "5,1,0",
            "--n-trees",
            "3",
            "--quiet",
        ]

    def test_stats_empty(self, capsys):
        rc = main(["cache", "stats"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "memory tier  : 0 entries" in out
        assert "disk tier    : disabled" in out

    def test_solve_populates_cache_and_stats_reports_it(self, graph_file, capsys):
        path, _g = graph_file
        assert main(self._solve_args(path)) == 0
        assert main(self._solve_args(path)) == 0  # warm: hits
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "trees" in out
        assert "repro_cache_hits_total" in out
        from repro.cache import get_cache

        assert get_cache().stats.by_kind["trees"]["hits"] >= 1

    def test_no_cache_flag_bypasses(self, graph_file, capsys):
        path, _g = graph_file
        assert main(self._solve_args(path) + ["--no-cache"]) == 0
        assert main(self._solve_args(path) + ["--no-cache"]) == 0
        capsys.readouterr()
        from repro.cache import get_cache

        assert len(get_cache()) == 0
        assert get_cache().stats.lookups == 0

    def test_clear_wipes_memory_and_disk(self, graph_file, tmp_path, capsys, monkeypatch):
        path, _g = graph_file
        cache_dir = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        from repro.cache import reset_cache

        reset_cache()  # pick up the env var
        assert main(self._solve_args(path)) == 0
        assert list(cache_dir.glob("*/*.pkl"))
        assert main(["cache", "clear"]) == 0
        out = capsys.readouterr().out
        assert "cleared:" in out
        assert not list(cache_dir.glob("*/*.pkl"))
        from repro.cache import get_cache

        assert len(get_cache()) == 0

    def test_clear_memory_only_keeps_disk(self, graph_file, tmp_path, capsys, monkeypatch):
        path, _g = graph_file
        cache_dir = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        from repro.cache import reset_cache

        reset_cache()
        assert main(self._solve_args(path)) == 0
        assert main(["cache", "clear", "--memory-only"]) == 0
        capsys.readouterr()
        assert list(cache_dir.glob("*/*.pkl"))

    def test_stats_with_dir_override(self, tmp_path, capsys):
        target = tmp_path / "elsewhere"
        (target / "trees").mkdir(parents=True)
        (target / "trees" / "deadbeef.pkl").write_bytes(b"x" * 10)
        rc = main(["cache", "stats", "--dir", str(target)])
        assert rc == 0
        out = capsys.readouterr().out
        assert str(target) in out
        assert "1 files" in out

    def test_stats_break_memory_tier_down_by_kind(self, graph_file, capsys):
        path, _g = graph_file
        assert main(self._solve_args(path)) == 0
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        # Per-kind memory rows: the solve stored trees and (incremental
        # default on) per-node subtree DP tables.
        assert "trees" in out
        assert "subtree_tables" in out

    def test_no_incremental_flag_skips_memo(self, graph_file, capsys):
        path, _g = graph_file
        assert main(self._solve_args(path) + ["--no-incremental"]) == 0
        capsys.readouterr()
        from repro.cache import get_cache

        mem = get_cache().describe()["memory"]
        assert "subtree_tables" not in mem["by_kind"]
        assert "trees" in mem["by_kind"]  # the rest of the cache still works


class TestProfileFlags:
    def _solve(self, graph_file, tmp_path, extra):
        path, _g = graph_file
        return main(
            [
                "solve", "--graph", str(path),
                "--degrees", "2,2", "--cm", "5,1,0",
                "--n-trees", "2", "--quiet",
            ]
            + extra
        )

    def test_profile_writes_collapsed_and_report_section(
        self, graph_file, tmp_path, capsys
    ):
        collapsed = tmp_path / "run.collapsed"
        report = tmp_path / "run.json"
        rc = self._solve(
            graph_file,
            tmp_path,
            [
                "--profile", str(collapsed),
                "--profile-hz", "300",
                "--report", str(report),
            ],
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert f"collapsed-stack profile written to {collapsed}" in out
        assert collapsed.exists()
        for line in collapsed.read_text().splitlines():
            assert line.startswith("span:")
        data = json.loads(report.read_text())
        assert data["schema_version"] == 3
        assert data["profile"]["hz"] == 300.0

    def test_profile_rejected_for_baselines(self, graph_file, tmp_path, capsys):
        path, _g = graph_file
        rc = main(
            [
                "solve", "--graph", str(path),
                "--degrees", "2,2", "--cm", "5,1,0",
                "--method", "greedy",
                "--profile", str(tmp_path / "x.collapsed"),
            ]
        )
        assert rc == 2
        assert "--profile requires an engine method" in capsys.readouterr().err

    def test_report_flame_prints_collapsed(self, graph_file, tmp_path, capsys):
        collapsed = tmp_path / "run.collapsed"
        report = tmp_path / "run.json"
        assert (
            self._solve(
                graph_file,
                tmp_path,
                ["--profile", str(collapsed), "--report", str(report)],
            )
            == 0
        )
        capsys.readouterr()
        rc = main(["report", "flame", str(report)])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.splitlines()
        assert all(ln.startswith("span:") for ln in out.splitlines())

    def test_report_flame_out_file(self, graph_file, tmp_path, capsys):
        collapsed = tmp_path / "run.collapsed"
        report = tmp_path / "run.json"
        self._solve(
            graph_file,
            tmp_path,
            ["--profile", str(collapsed), "--report", str(report)],
        )
        capsys.readouterr()
        dest = tmp_path / "flame.collapsed"
        rc = main(["report", "flame", str(report), "--out", str(dest)])
        assert rc == 0
        assert "written to" in capsys.readouterr().out
        assert dest.read_text().splitlines()

    def test_report_flame_without_profile_errors(
        self, graph_file, tmp_path, capsys
    ):
        report = tmp_path / "plain.json"
        self._solve(graph_file, tmp_path, ["--report", str(report)])
        capsys.readouterr()
        rc = main(["report", "flame", str(report)])
        assert rc == 2
        assert "no profile section" in capsys.readouterr().err

    def test_report_show_includes_latency_and_profile(
        self, graph_file, tmp_path, capsys
    ):
        collapsed = tmp_path / "run.collapsed"
        report = tmp_path / "run.json"
        self._solve(
            graph_file,
            tmp_path,
            ["--profile", str(collapsed), "--report", str(report)],
        )
        capsys.readouterr()
        rc = main(["report", "show", str(report)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "latency (dp+repair): p50" in out
        assert "profile:" in out
        assert "span shares:" in out


class TestMetricsPortFlag:
    def test_exporter_announced_and_scrapeable_port_freed(
        self, graph_file, tmp_path, capsys
    ):
        import socket

        path, _g = graph_file
        rc = main(
            [
                "solve", "--graph", str(path),
                "--degrees", "2,2", "--cm", "5,1,0",
                "--n-trees", "2", "--quiet",
                "--metrics-port", "0",
            ]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "metrics exporter listening on http://127.0.0.1:" in err
        # The exporter must be torn down with the solve: its port is free.
        url = [w for w in err.split() if w.startswith("http://")][0]
        port = int(url.rsplit(":", 1)[1].split("/")[0])
        with socket.socket() as s:
            s.bind(("127.0.0.1", port))
