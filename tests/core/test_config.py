"""Tests for SolverConfig validation."""

import pytest

from repro import SolverConfig
from repro.errors import InvalidInputError


class TestConfig:
    def test_defaults_valid(self):
        cfg = SolverConfig()
        assert cfg.n_trees >= 1
        assert cfg.grid_mode == "auto"

    def test_describe_roundtrips(self):
        cfg = SolverConfig(n_trees=3, tree_methods=("spectral",))
        d = cfg.describe()
        assert d["n_trees"] == 3
        assert d["tree_methods"] == ["spectral"]

    def test_bad_n_trees(self):
        with pytest.raises(InvalidInputError):
            SolverConfig(n_trees=0)

    def test_bad_grid_mode(self):
        with pytest.raises(InvalidInputError):
            SolverConfig(grid_mode="nope")

    def test_budget_mode_requires_budget(self):
        with pytest.raises(InvalidInputError):
            SolverConfig(grid_mode="budget")
        SolverConfig(grid_mode="budget", grid_budget=100)  # ok

    def test_bad_epsilon(self):
        with pytest.raises(InvalidInputError):
            SolverConfig(epsilon=0.0)

    def test_bad_slack(self):
        with pytest.raises(InvalidInputError):
            SolverConfig(slack=-0.1)

    def test_bad_beam(self):
        with pytest.raises(InvalidInputError):
            SolverConfig(beam_width=0)

    def test_bad_refine_passes(self):
        with pytest.raises(InvalidInputError):
            SolverConfig(refine_passes=-1)

    def test_frozen(self):
        cfg = SolverConfig()
        with pytest.raises(Exception):
            cfg.n_trees = 5  # type: ignore[misc]


class TestDPConfigField:
    def test_default_dp_config(self):
        cfg = SolverConfig()
        assert cfg.dp.tile_size > 0
        assert cfg.dp.bound_pruning is True
        assert cfg.dp.parallel_subtrees is False

    def test_custom_dp_config(self):
        from repro.hgpt.dp import DPConfig

        cfg = SolverConfig(dp=DPConfig(tile_size=1024, bound_pruning=False))
        assert cfg.dp.tile_size == 1024
        assert cfg.dp.bound_pruning is False

    def test_describe_includes_dp_knobs(self):
        desc = SolverConfig().describe()
        assert desc["dp"]["tile_size"] == SolverConfig().dp.tile_size
        assert "bound_pruning" in desc["dp"]
        assert "parallel_subtrees" in desc["dp"]
