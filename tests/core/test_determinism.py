"""Serial vs. process-pool determinism of the staged engine.

The ensemble members are independent and each member solve is
deterministic given its tree and grid, so fanning the DP+repair work out
to worker processes must not change the winner — same placement, same
cost, same per-member diagnostics, for the same seed.
"""

import numpy as np
import pytest

from repro import SolverConfig, solve_hgp


class TestWorkerDeterminism:
    @pytest.fixture(scope="class")
    def results(self):
        from repro.core.config import IncrementalConfig
        from repro.graph.generators import planted_partition, random_demands
        from repro.hierarchy.hierarchy import Hierarchy

        hier = Hierarchy([2, 4], [10.0, 3.0, 0.0])
        g = planted_partition(4, 6, 0.9, 0.05, seed=11)
        d = random_demands(g.n, hier.total_capacity, fill=0.6, skew=0.3, seed=12)
        # The subtree-table memo is off here: its cache visibility differs
        # between the legs (serial members share one in-process memory,
        # pool workers do not), so work-volume diagnostics (merges, tiles)
        # would legitimately diverge even though outputs stay identical.
        # This test pins down worker determinism of the DP itself.
        cfg = dict(
            seed=0,
            n_trees=4,
            refine=False,
            incremental=IncrementalConfig(enabled=False),
        )
        serial = solve_hgp(g, hier, d, SolverConfig(n_jobs=1, **cfg))
        parallel = solve_hgp(g, hier, d, SolverConfig(n_jobs=2, **cfg))
        return serial, parallel

    def test_identical_winner(self, results):
        serial, parallel = results
        assert parallel.cost == serial.cost
        assert np.array_equal(parallel.placement.leaf_of, serial.placement.leaf_of)

    def test_identical_member_diagnostics(self, results):
        serial, parallel = results
        assert parallel.tree_costs == serial.tree_costs
        assert parallel.dp_costs == serial.dp_costs
        for a, b in zip(serial.telemetry.members, parallel.telemetry.members):
            assert a.index == b.index
            assert a.method == b.method
            assert a.dp_cost == b.dp_cost
            assert a.mapped_cost == b.mapped_cost
            assert a.dp_states_total == b.dp_states_total
            assert a.dp_merges == b.dp_merges

    def test_parallel_phase_timings_not_dropped(self, results):
        _serial, parallel = results
        assert parallel.stopwatch.total("dp") > 0.0
        assert parallel.stopwatch.total("repair") > 0.0
