"""Tests for the staged engine: every solve path shares it and emits the
same structured telemetry (stage spans + per-tree member records)."""

import numpy as np
import pytest

from repro import SolverConfig, solve_hgp
from repro.core.engine import STAGE_NAMES, run_pipeline, solve_member
from repro.core.kbgp import solve_kbgp
from repro.core.portfolio import seed_portfolio, solve_hgp_portfolio
from repro.core.telemetry import RunReport, Telemetry
from repro.decomposition.guided import solve_hgp_iterated
from repro.streaming.online import OnlinePlacer

CFG = SolverConfig(seed=0, n_trees=4, refine=False)


def assert_stage_spans(telemetry, path=None):
    """Every engine run emits the full five-stage span skeleton."""
    if path is not None:
        assert telemetry.path == path
    for name in STAGE_NAMES:
        spans = telemetry.find_spans(name)
        assert spans, f"missing span {name!r} under path {telemetry.path!r}"
    for name in ("trees", "dp", "repair"):
        assert sum(s.seconds for s in telemetry.find_spans(name)) > 0.0


class TestBatchPath:
    def test_solve_hgp_attaches_telemetry(self, clustered_instance):
        g, hier, d = clustered_instance
        res = solve_hgp(g, hier, d, CFG)
        assert res.telemetry is not None
        assert_stage_spans(res.telemetry, path="batch")

    def test_member_records_cover_ensemble(self, clustered_instance):
        g, hier, d = clustered_instance
        res = solve_hgp(g, hier, d, CFG)
        members = res.telemetry.members
        assert len(members) == CFG.n_trees
        assert [m.index for m in members] == list(range(CFG.n_trees))
        for m, mapped, dp in zip(members, res.tree_costs, res.dp_costs):
            assert m.mapped_cost == pytest.approx(mapped)
            assert m.dp_cost == pytest.approx(dp)
            assert m.dp_seconds > 0.0
            assert m.repair_seconds > 0.0
            assert m.method is not None

    def test_report_round_trips(self, clustered_instance):
        g, hier, d = clustered_instance
        res = solve_hgp(g, hier, d, CFG)
        report = res.report()
        assert report.cost == pytest.approx(res.cost)
        assert report.config["n_trees"] == CFG.n_trees
        again = RunReport.from_json(report.to_json())
        assert again.to_dict() == report.to_dict()

    def test_stopwatch_view_matches_telemetry(self, clustered_instance):
        g, hier, d = clustered_instance
        res = solve_hgp(g, hier, d, CFG)
        for name in ("trees", "quantize", "dp", "repair"):
            assert res.stopwatch.total(name) == pytest.approx(
                res.telemetry.root.child(name).seconds
            )


class TestParallelPath:
    def test_worker_timings_merged(self, clustered_instance):
        """The pool path reports non-empty dp/repair sections (the old
        Stopwatch-based path silently dropped them)."""
        g, hier, d = clustered_instance
        cfg = SolverConfig(seed=0, n_trees=4, refine=False, n_jobs=2)
        result = run_pipeline(g, hier, d, cfg)
        dp = result.telemetry.root.child("dp")
        repair = result.telemetry.root.child("repair")
        assert dp.seconds > 0.0
        assert repair.seconds > 0.0
        assert dp.count == cfg.n_trees
        assert repair.count == cfg.n_trees
        assert len(result.telemetry.members) == cfg.n_trees
        assert all(m.dp_seconds > 0.0 for m in result.telemetry.members)


class TestPortfolioPath:
    def test_emits_stage_spans_and_all_members(self, clustered_instance):
        g, hier, d = clustered_instance
        configs = seed_portfolio(SolverConfig(seed=0, n_trees=2, refine=False), 2)
        res = solve_hgp_portfolio(g, hier, d, configs)
        assert_stage_spans(res.telemetry, path="portfolio")
        # member records accumulate across portfolio members
        assert len(res.telemetry.members) == 4
        assert [m.index for m in res.telemetry.members] == list(range(4))
        report = res.report()
        assert report.path == "portfolio"
        assert res.placement.meta["portfolio_member"] in (0, 1)

    def test_caller_supplied_telemetry(self, clustered_instance):
        g, hier, d = clustered_instance
        tel = Telemetry("portfolio")
        configs = seed_portfolio(SolverConfig(seed=0, n_trees=2, refine=False), 2)
        res = solve_hgp_portfolio(g, hier, d, configs, telemetry=tel)
        assert res.telemetry is tel
        assert tel.root.counters["portfolio_members"] == pytest.approx(2.0)


class TestKBGPPath:
    def test_emits_stage_spans(self, two_blocks):
        tel = Telemetry("kbgp")
        p = solve_kbgp(two_blocks, 4, config=CFG, telemetry=tel)
        assert_stage_spans(tel, path="kbgp")
        assert len(tel.members) == CFG.n_trees
        assert p.leaf_of.shape == (two_blocks.n,)


class TestStreamingPath:
    def test_reoptimize_records_run_report(self, hier_2x4):
        placer = OnlinePlacer(hier_2x4, config=SolverConfig(seed=0, n_trees=2, refine=False))
        assert placer.last_report is None
        for t in range(8):
            edges = ((t - 1, 1.0),) if t > 0 else ()
            placer.arrive(t, demand=0.4, edges=edges)
        placer.reoptimize()
        report = placer.last_report
        assert report is not None
        assert report.path == "streaming"
        for name in STAGE_NAMES:
            assert report.spans.lookup(name) is not None or report.spans.name == name
        assert report.members
        assert report.meta["live_tasks"] == 8
        again = RunReport.from_json(report.to_json())
        assert again.to_dict() == report.to_dict()

    def test_place_dag_threads_telemetry(self, hier_2x4):
        from repro.streaming.operators import Operator, StreamDAG
        from repro.streaming.pinning import place_dag

        dag = StreamDAG()
        src = dag.add_operator(Operator("src", source_rate=10.0, tuple_bytes=100.0))
        a = dag.add_operator(Operator("a", service_cost=0.02, selectivity=1.0))
        b = dag.add_operator(Operator("b", service_cost=0.02, selectivity=1.0))
        sink = dag.add_operator(Operator("sink", service_cost=0.01, selectivity=0.0))
        dag.add_edge(src, a)
        dag.add_edge(a, b)
        dag.add_edge(b, sink)
        tel = Telemetry("streaming")
        placement, _report = place_dag(
            dag, hier_2x4, config=SolverConfig(seed=0, n_trees=2, refine=False),
            telemetry=tel,
        )
        assert_stage_spans(tel, path="streaming")
        assert placement.leaf_of.shape == (4,)


class TestGuidedPath:
    def test_iterated_extends_shared_telemetry(self, clustered_instance):
        g, hier, d = clustered_instance
        res = solve_hgp_iterated(g, hier, d, config=CFG, rounds=1)
        assert_stage_spans(res.telemetry, path="guided")
        # ensemble members + one guided round
        assert len(res.telemetry.members) == CFG.n_trees + 1
        assert res.telemetry.members[-1].method == "guided"
        assert len(res.tree_costs) == CFG.n_trees + 1


class TestSolveMember:
    def test_outcome_is_self_consistent(self, clustered_instance):
        from repro.core.engine import make_grid
        from repro.decomposition.racke import build_tree

        g, hier, d = clustered_instance
        d = np.asarray(d, dtype=np.float64)
        grid = make_grid(hier, d, CFG)
        tree = build_tree(g, "spectral", seed=0)
        outcome = solve_member(tree, hier, d, CFG, grid, index=5)
        assert outcome.index == 5
        assert outcome.record.index == 5
        assert outcome.mapped_cost == pytest.approx(outcome.placement.cost())
        assert outcome.mapped_cost <= outcome.dp_cost + 1e-6
        assert outcome.record.method == "spectral"
        assert outcome.timings.total("dp") == pytest.approx(
            outcome.record.dp_seconds
        )
