"""Tests for the exact branch-and-bound solver."""

import itertools

import numpy as np
import pytest

from repro import Graph, Hierarchy, exact_hgp
from repro.errors import InfeasibleError, InvalidInputError
from repro.graph.generators import grid_2d


def enumerate_optimum(g, hier, d, violation=1.0):
    """Plain exhaustive enumeration (no pruning) as an oracle."""
    best = float("inf")
    budgets = [violation * hier.capacity(j) + 1e-12 for j in range(hier.h + 1)]
    for combo in itertools.product(range(hier.k), repeat=g.n):
        leaf_of = np.asarray(combo, dtype=np.int64)
        ok = True
        for j in range(1, hier.h + 1):
            loads = np.zeros(hier.count(j))
            np.add.at(loads, np.asarray(hier.ancestor(leaf_of, j)), d)
            if loads.size and loads.max() > budgets[j]:
                ok = False
                break
        if not ok:
            continue
        mult = hier.pair_cost_multiplier(leaf_of[g.edges_u], leaf_of[g.edges_v])
        cost = float(np.dot(np.asarray(mult), g.edges_w))
        best = min(best, cost)
    return best


class TestExact:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_enumeration_h1(self, seed):
        g = grid_2d(2, 3, weight_range=(0.5, 2.0), seed=seed)
        hier = Hierarchy([3], [1.0, 0.0])
        d = np.full(6, 0.5)
        p = exact_hgp(g, hier, d)
        assert p.cost() == pytest.approx(enumerate_optimum(g, hier, d))

    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_enumeration_h2(self, seed):
        g = grid_2d(2, 3, weight_range=(0.5, 2.0), seed=10 + seed)
        hier = Hierarchy([2, 2], [5.0, 1.0, 0.0])
        d = np.full(6, 0.5)
        p = exact_hgp(g, hier, d)
        assert p.cost() == pytest.approx(enumerate_optimum(g, hier, d))

    def test_respects_capacity(self):
        g = grid_2d(2, 2, seed=0)
        hier = Hierarchy([2, 2], [5.0, 1.0, 0.0])
        d = np.full(4, 0.6)  # only one per leaf
        p = exact_hgp(g, hier, d)
        assert p.max_violation() <= 1.0 + 1e-9
        assert np.unique(p.leaf_of).size == 4

    def test_violation_budget_changes_optimum(self):
        """Relaxing balance can only lower the optimal cost."""
        g = Graph(4, [(0, 1, 5.0), (1, 2, 5.0), (2, 3, 5.0)])
        hier = Hierarchy([2], [1.0, 0.0], leaf_capacity=1.0)
        d = np.full(4, 0.5)
        strict = exact_hgp(g, hier, d, violation=1.0)
        loose = exact_hgp(g, hier, d, violation=2.0)
        assert loose.cost() <= strict.cost()
        assert loose.cost() == 0.0  # everything fits one leaf at 2x

    def test_infeasible_raises(self):
        g = Graph(3, [(0, 1, 1.0)])
        hier = Hierarchy([2], [1.0, 0.0])
        d = np.full(3, 0.9)  # three 0.9s cannot fit two unit leaves
        with pytest.raises(InfeasibleError):
            exact_hgp(g, hier, d)

    def test_size_limit_enforced(self):
        g = grid_2d(4, 4, seed=0)
        hier = Hierarchy([2], [1.0, 0.0])
        with pytest.raises(InvalidInputError):
            exact_hgp(g, hier, np.full(16, 0.1), size_limit=10)

    def test_symmetry_pruning_correctness(self):
        """Canonicalisation must not lose the optimum: compare against the
        unpruned enumeration on an asymmetric instance."""
        g = Graph(5, [(0, 1, 3.0), (1, 2, 1.0), (2, 3, 2.0), (3, 4, 4.0), (0, 4, 0.5)])
        hier = Hierarchy([2, 2], [4.0, 1.0, 0.0])
        d = np.array([0.9, 0.4, 0.4, 0.9, 0.2])
        p = exact_hgp(g, hier, d)
        assert p.cost() == pytest.approx(enumerate_optimum(g, hier, d))

    def test_meta_has_node_count(self):
        g = grid_2d(2, 2, seed=0)
        hier = Hierarchy([2], [1.0, 0.0])
        p = exact_hgp(g, hier, np.full(4, 0.4))
        assert p.meta["nodes_visited"] > 0
