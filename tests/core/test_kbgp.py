"""Tests for the k-BGP reduction (h = 1 special case)."""

import numpy as np
import pytest

from repro import SolverConfig, solve_kbgp
from repro.core.kbgp import kbgp_hierarchy, minimum_bisection
from repro.errors import InvalidInputError
from repro.graph.generators import grid_2d, planted_partition


class TestKbgpHierarchy:
    def test_shape(self):
        h = kbgp_hierarchy(6)
        assert h.h == 1
        assert h.k == 6
        assert h.cm == (1.0, 0.0)

    def test_bad_k(self):
        with pytest.raises(InvalidInputError):
            kbgp_hierarchy(0)


class TestSolveKbgp:
    def test_cost_is_cut_weight(self):
        g = planted_partition(4, 4, 1.0, 0.05, seed=2)
        p = solve_kbgp(g, 4, config=SolverConfig(seed=0, n_trees=4))
        assert p.cost() == pytest.approx(g.partition_cut_weight(p.leaf_of))

    def test_recovers_planted_blocks(self):
        g = planted_partition(4, 5, 1.0, 0.0, seed=3)  # 4 disconnected cliques
        p = solve_kbgp(g, 4, config=SolverConfig(seed=0, n_trees=4))
        assert p.cost() == 0.0

    def test_custom_demands(self):
        g = grid_2d(2, 4, seed=0)
        d = np.full(8, 0.25)
        p = solve_kbgp(g, 4, demands=d, config=SolverConfig(seed=0, n_trees=2))
        assert p.max_violation() <= 2 * (1 + 0.25) + 1e-9  # (1+h)(1+slack), h=1


class TestMinimumBisection:
    def test_two_blocks(self, two_blocks):
        cut, mask = minimum_bisection(two_blocks, seed=0)
        assert cut == pytest.approx(0.5)
        assert mask.sum() == 6

    def test_grid_bisection_quality(self):
        g = grid_2d(6, 6)
        cut, mask = minimum_bisection(g, seed=0)
        # Optimal balanced bisection of a 6x6 grid cuts 6 edges.
        assert cut <= 8.0
        assert 14 <= mask.sum() <= 22

    def test_cut_value_matches_mask(self, grid44):
        cut, mask = minimum_bisection(grid44, seed=1)
        assert cut == pytest.approx(grid44.cut_weight(mask))
