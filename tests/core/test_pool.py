"""Tests for the persistent worker pool and generation payloads."""

import os
import pickle

import numpy as np
import pytest

from repro import SolverConfig, solve_hgp
from repro.core import pool as worker_pool
from repro.graph.generators import planted_partition, random_demands
from repro.hierarchy.hierarchy import Hierarchy


@pytest.fixture
def instance():
    hier = Hierarchy([2, 4], [10.0, 3.0, 0.0])
    g = planted_partition(4, 6, 0.9, 0.05, seed=11)
    d = random_demands(g.n, hier.total_capacity, fill=0.6, skew=0.3, seed=12)
    return g, hier, d


class TestGenerationPayloads:
    def test_publish_and_release(self):
        payload = {"data": np.arange(32), "run_id": "r1"}
        ref = worker_pool.publish_generation(payload)
        try:
            assert os.path.exists(ref.path)
            assert ref.nbytes > 0
            with open(ref.path, "rb") as fh:
                loaded = pickle.load(fh)
            assert np.array_equal(loaded["data"], payload["data"])
        finally:
            worker_pool.release_generation(ref)
        assert not os.path.exists(ref.path)
        worker_pool.release_generation(ref)  # idempotent

    def test_worker_memoises_generation(self):
        payload = {"value": 42}
        ref = worker_pool.publish_generation(payload)
        try:
            first = worker_pool._load_generation(ref)
            second = worker_pool._load_generation(ref)
            assert second is first  # loaded once, served from the memo
        finally:
            worker_pool.release_generation(ref)
            worker_pool._GEN_CACHE.clear()

    def test_shared_graph_pickled_once(self, instance):
        # The trees all reference the same underlying graph; pickle's memo
        # must dedup it so the payload is ~one instance, not n_trees.
        from repro.decomposition.racke import racke_ensemble

        g, hier, d = instance
        trees = racke_ensemble(g, n_trees=6, seed=0, use_cache=False)
        one = len(pickle.dumps({"trees": trees[:1]}))
        six = len(pickle.dumps({"trees": trees}))
        assert six < 6 * one


class TestPersistentPool:
    def test_pool_reused_across_engine_runs(self, instance):
        g, hier, d = instance
        worker_pool.shutdown_pool()
        creates0 = worker_pool.pool_info()["creates"]
        cfg = SolverConfig(seed=0, n_trees=4, refine=False, n_jobs=2)
        first = solve_hgp(g, hier, d, cfg)
        after_first = worker_pool.pool_info()
        second = solve_hgp(g, hier, d, cfg)
        after_second = worker_pool.pool_info()

        assert after_first["creates"] == creates0 + 1
        assert after_second["creates"] == creates0 + 1  # no new executor
        assert after_second["alive"] == 1
        assert second.cost == first.cost
        assert np.array_equal(
            second.placement.leaf_of, first.placement.leaf_of
        )

    def test_pool_grows_but_never_shrinks(self):
        worker_pool.shutdown_pool()
        worker_pool.get_pool(2)
        creates = worker_pool.pool_info()["creates"]
        worker_pool.get_pool(1)  # smaller request reuses the 2-pool
        assert worker_pool.pool_info()["workers"] == 2
        assert worker_pool.pool_info()["creates"] == creates
        worker_pool.get_pool(3)  # larger request rebuilds
        assert worker_pool.pool_info()["workers"] == 3
        assert worker_pool.pool_info()["creates"] == creates + 1
        worker_pool.shutdown_pool()
        assert worker_pool.pool_info() == {
            "workers": 0,
            "creates": creates + 1,
            "alive": 0,
            "live_workers": 0,
        }

    def test_get_pool_rejects_bad_size(self):
        with pytest.raises(ValueError):
            worker_pool.get_pool(0)

    def test_parallel_matches_serial_with_persistent_pool(self, instance):
        g, hier, d = instance
        serial = solve_hgp(
            g, hier, d, SolverConfig(seed=0, n_trees=4, refine=False, n_jobs=1)
        )
        parallel = solve_hgp(
            g, hier, d, SolverConfig(seed=0, n_trees=4, refine=False, n_jobs=2)
        )
        assert parallel.cost == serial.cost
        assert np.array_equal(
            parallel.placement.leaf_of, serial.placement.leaf_of
        )
        assert [m.dp_cost for m in parallel.telemetry.members] == [
            m.dp_cost for m in serial.telemetry.members
        ]
