"""Tests for portfolio solving."""

import pytest

from repro import SolverConfig
from repro.core.portfolio import seed_portfolio, solve_hgp_portfolio
from repro.core.solver import solve_hgp
from repro.errors import InvalidInputError


class TestSeedPortfolio:
    def test_distinct_seeds(self):
        members = seed_portfolio(SolverConfig(seed=5), 4)
        seeds = [m.seed for m in members]
        assert len(set(seeds)) == 4
        assert seeds[0] == 5

    def test_other_knobs_preserved(self):
        base = SolverConfig(seed=0, n_trees=3, slack=0.1)
        for m in seed_portfolio(base, 2):
            assert m.n_trees == 3
            assert m.slack == 0.1

    def test_validation(self):
        with pytest.raises(InvalidInputError):
            seed_portfolio(SolverConfig(), 0)


class TestSolvePortfolio:
    def test_never_worse_than_first_member(self, clustered_instance):
        g, hier, d = clustered_instance
        configs = seed_portfolio(SolverConfig(seed=0, n_trees=2, refine=False), 3)
        single = solve_hgp(g, hier, d, configs[0])
        port = solve_hgp_portfolio(g, hier, d, configs)
        assert port.cost <= single.cost + 1e-9

    def test_winner_recorded(self, clustered_instance):
        g, hier, d = clustered_instance
        configs = seed_portfolio(SolverConfig(seed=0, n_trees=2, refine=False), 2)
        port = solve_hgp_portfolio(g, hier, d, configs)
        assert port.placement.meta["portfolio_member"] in (0, 1)

    def test_empty_configs_rejected(self, clustered_instance):
        g, hier, d = clustered_instance
        with pytest.raises(InvalidInputError):
            solve_hgp_portfolio(g, hier, d, configs=[])
