"""Tests for the end-to-end Theorem-1 pipeline."""

import numpy as np
import pytest

from repro import Graph, SolverConfig, solve_hgp, solve_hgpt
from repro.errors import InfeasibleError, InvalidInputError
from repro.graph.generators import grid_2d, planted_partition
from repro.decomposition.spectral_tree import spectral_decomposition_tree


CFG = SolverConfig(seed=0, n_trees=4, refine=False)


class TestSolveHGP:
    def test_returns_valid_placement(self, clustered_instance):
        g, hier, d = clustered_instance
        res = solve_hgp(g, hier, d, CFG)
        p = res.placement
        assert p.leaf_of.shape == (g.n,)
        assert (p.leaf_of >= 0).all() and (p.leaf_of < hier.k).all()

    def test_violation_within_theorem1(self, clustered_instance):
        g, hier, d = clustered_instance
        res = solve_hgp(g, hier, d, CFG)
        bound = (1 + res.grid.epsilon) * (1 + hier.h)
        assert res.placement.max_violation() <= bound + 1e-9

    def test_mapped_cost_bounded_by_dp_cost(self, clustered_instance):
        """Proposition 1 along the whole pipeline (refine off)."""
        g, hier, d = clustered_instance
        res = solve_hgp(g, hier, d, CFG)
        for mapped, dp in zip(res.tree_costs, res.dp_costs):
            assert mapped <= dp + 1e-6

    def test_best_of_ensemble_selected(self, clustered_instance):
        g, hier, d = clustered_instance
        res = solve_hgp(g, hier, d, CFG)
        assert res.cost == pytest.approx(min(res.tree_costs))

    def test_refine_never_hurts(self, clustered_instance):
        g, hier, d = clustered_instance
        base = solve_hgp(g, hier, d, CFG)
        refined = solve_hgp(
            g, hier, d, SolverConfig(seed=0, n_trees=4, refine=True)
        )
        assert refined.cost <= base.cost + 1e-9

    def test_beats_random_placement(self, clustered_instance):
        from repro.baselines import random_placement

        g, hier, d = clustered_instance
        res = solve_hgp(g, hier, d, CFG)
        rnd = random_placement(g, hier, d, seed=1)
        assert res.cost < rnd.cost()

    def test_colocatable_instance_costs_zero(self, hier_2x4):
        """Everything fits on one leaf => optimal cost 0."""
        g = grid_2d(2, 3, weight_range=(1.0, 2.0), seed=0)
        d = np.full(6, 0.05)
        res = solve_hgp(g, hier_2x4, d, CFG)
        assert res.cost == 0.0

    def test_deterministic(self, clustered_instance):
        g, hier, d = clustered_instance
        a = solve_hgp(g, hier, d, CFG)
        b = solve_hgp(g, hier, d, CFG)
        assert a.cost == b.cost
        assert np.array_equal(a.placement.leaf_of, b.placement.leaf_of)

    def test_stopwatch_records_phases(self, clustered_instance):
        g, hier, d = clustered_instance
        res = solve_hgp(g, hier, d, CFG)
        assert res.stopwatch.total("trees") > 0
        assert res.stopwatch.total("dp") > 0

    def test_meta_records_config(self, clustered_instance):
        g, hier, d = clustered_instance
        res = solve_hgp(g, hier, d, CFG)
        assert res.placement.meta["solver"] == "hgp"
        assert res.placement.meta["config"]["n_trees"] == 4


class TestGridModes:
    def test_epsilon_mode(self, hier_2x4):
        g = grid_2d(2, 4, seed=0)
        d = np.full(8, 0.4)
        cfg = SolverConfig(seed=0, n_trees=2, grid_mode="epsilon", epsilon=0.5,
                           refine=False)
        res = solve_hgp(g, hier_2x4, d, cfg)
        assert res.grid.epsilon == 0.5

    def test_budget_mode(self, hier_2x4):
        g = grid_2d(2, 4, seed=0)
        d = np.full(8, 0.4)
        cfg = SolverConfig(
            seed=0, n_trees=2, grid_mode="budget", grid_budget=32, slack=0.3,
            refine=False,
        )
        res = solve_hgp(g, hier_2x4, d, cfg)
        assert res.grid.epsilon == 0.3

    def test_auto_mode_budget_floor(self, hier_2x4):
        g = grid_2d(2, 4, seed=0)
        d = np.full(8, 0.4)
        res = solve_hgp(g, hier_2x4, d, SolverConfig(seed=0, n_trees=2, refine=False))
        q = res.grid.quantize(d)
        assert q.sum() >= 64  # auto floor


class TestInfeasibility:
    def test_oversized_vertex(self, hier_2x4):
        g = grid_2d(2, 2, seed=0)
        d = np.array([0.5, 0.5, 0.5, 1.5])
        with pytest.raises(InfeasibleError):
            solve_hgp(g, hier_2x4, d, CFG)

    def test_total_overflow(self, hier_2x4):
        g = grid_2d(3, 3, seed=0)
        d = np.full(9, 1.0)  # total 9 > 8
        with pytest.raises(InfeasibleError):
            solve_hgp(g, hier_2x4, d, CFG)

    def test_bad_shapes(self, hier_2x4):
        g = grid_2d(2, 2, seed=0)
        with pytest.raises(InvalidInputError):
            solve_hgp(g, hier_2x4, np.full(3, 0.1), CFG)

    def test_empty_graph(self, hier_2x4):
        with pytest.raises(InvalidInputError):
            solve_hgp(Graph(0, []), hier_2x4, np.array([]), CFG)


class TestSolveHGPT:
    def test_single_tree_interface(self, clustered_instance):
        g, hier, d = clustered_instance
        tree = spectral_decomposition_tree(g, seed=0)
        placement, dp_cost = solve_hgpt(tree, hier, d, CFG)
        assert placement.cost() <= dp_cost + 1e-6
        assert placement.max_violation() <= (
            (1 + hier.h) * (1 + 0.25) + 1e-9  # default slack
        )

    def test_height_one_reduces_to_partitioning(self, hier_flat8):
        g = planted_partition(8, 3, 1.0, 0.02, seed=4)
        d = np.full(24, 0.3)
        tree = spectral_decomposition_tree(g, seed=0)
        placement, _ = solve_hgpt(tree, hier_flat8, d, CFG)
        # Cost should be the cut weight of the induced partition.
        assert placement.cost() == pytest.approx(
            g.partition_cut_weight(placement.leaf_of)
        )


class TestParallelEnsemble:
    def test_n_jobs_identical_results(self, clustered_instance):
        g, hier, d = clustered_instance
        serial = solve_hgp(g, hier, d, SolverConfig(seed=0, n_trees=4, n_jobs=1))
        parallel = solve_hgp(g, hier, d, SolverConfig(seed=0, n_trees=4, n_jobs=2))
        assert serial.cost == parallel.cost
        assert np.array_equal(serial.placement.leaf_of, parallel.placement.leaf_of)
        assert serial.tree_costs == parallel.tree_costs

    def test_n_jobs_validation(self):
        with pytest.raises(InvalidInputError):
            SolverConfig(n_jobs=0)
