"""Unit tests for the structured telemetry layer (spans, records, reports)."""

import time

import pytest

from repro.core.telemetry import MemberRecord, RunReport, Span, Telemetry


class TestSpans:
    def test_nested_spans_accumulate(self):
        tel = Telemetry("run")
        for _ in range(3):
            with tel.span("outer"):
                with tel.span("inner"):
                    time.sleep(0.001)
        outer = tel.root.child("outer")
        inner = outer.child("inner")
        assert outer.count == 3
        assert inner.count == 3
        assert inner.seconds >= 0.003
        # inner time is contained in outer time
        assert outer.seconds >= inner.seconds
        # re-entry reuses the same node: exactly one child each
        assert len(tel.root.children) == 1
        assert len(outer.children) == 1

    def test_same_name_different_parents_are_distinct(self):
        tel = Telemetry("run")
        with tel.span("a"):
            with tel.span("x"):
                pass
        with tel.span("b"):
            with tel.span("x"):
                pass
        xs = tel.root.find_all("x")
        assert len(xs) == 2
        assert tel.root.lookup("x") is xs[0]
        # find_all/lookup are views over the same pre-order traversal.
        assert list(tel.root.iter_named("x")) == xs

    def test_lookup_missing_returns_none(self):
        tel = Telemetry("run")
        with tel.span("a"):
            pass
        assert tel.root.lookup("nope") is None
        assert tel.root.find_all("nope") == []

    def test_total_child_seconds_direct_children_only(self):
        root = Span("run")
        a = root.add("a", 1.0)
        a.add("a1", 10.0)  # grandchild: not counted at root
        root.add("b", 2.5)
        assert root.total_child_seconds() == pytest.approx(3.5)
        assert a.total_child_seconds() == pytest.approx(10.0)
        assert Span("leaf").total_child_seconds() == 0.0

    def test_current_tracks_innermost(self):
        tel = Telemetry("run")
        assert tel.current is tel.root
        with tel.span("a"):
            assert tel.current.name == "a"
            with tel.span("b"):
                assert tel.current.name == "b"
            assert tel.current.name == "a"
        assert tel.current is tel.root

    def test_counters_attach_to_current_span(self):
        tel = Telemetry("run")
        with tel.span("a"):
            tel.counter("hits")
            tel.counter("hits", 2.0)
        assert tel.root.child("a").counters["hits"] == pytest.approx(3.0)
        assert tel.root.counters == {}

    def test_add_seconds_folds_external_time(self):
        tel = Telemetry("run")
        tel.add_seconds("dp", 1.5, count=2)
        tel.add_seconds("dp", 0.5, count=1)
        dp = tel.root.child("dp")
        assert dp.seconds == pytest.approx(2.0)
        assert dp.count == 3

    def test_find_spans_includes_root(self):
        tel = Telemetry("dp")
        with tel.span("dp"):
            pass
        assert len(tel.find_spans("dp")) == 2

    def test_to_stopwatch_flat_view(self):
        tel = Telemetry("run")
        tel.add_seconds("dp", 1.0, count=4)
        with tel.span("trees"):
            pass
        sw = tel.to_stopwatch()
        assert sw.total("dp") == pytest.approx(1.0)
        assert sw.counts["dp"] == 4
        assert sw.counts["trees"] == 1
        assert sw.total("missing") == 0.0


class TestSerialization:
    def test_span_round_trip(self):
        root = Span("run")
        child = root.add("dp", 1.25, count=3)
        child.counters["states"] = 7.0
        child.add("merge", 0.5)
        again = Span.from_dict(root.to_dict())
        assert again.to_dict() == root.to_dict()

    def test_member_record_round_trip(self):
        rec = MemberRecord(
            index=3,
            method="spectral",
            dp_cost=12.5,
            mapped_cost=10.0,
            dp_seconds=0.5,
            repair_seconds=0.1,
            beam_escalations=1,
            dp_nodes=9,
            dp_states_total=100,
            dp_states_max=40,
            dp_merges=200,
        )
        assert MemberRecord.from_dict(rec.to_dict()) == rec

    def test_run_report_json_round_trip(self):
        tel = Telemetry("batch")
        with tel.span("trees"):
            tel.counter("n_trees", 4)
        tel.add_seconds("dp", 0.75, count=4)
        tel.record_member(MemberRecord(index=0, method="frt", dp_cost=3.0))
        report = tel.report(config={"n_trees": 4}, cost=2.5, note="unit-test")
        again = RunReport.from_json(report.to_json())
        assert again.to_dict() == report.to_dict()
        assert again.path == "batch"
        assert again.cost == pytest.approx(2.5)
        assert again.config == {"n_trees": 4}
        assert again.meta == {"note": "unit-test"}
        assert len(again.members) == 1
        assert again.members[0].method == "frt"
        assert again.spans.child("dp").seconds == pytest.approx(0.75)

    def test_report_schema_version_serialized(self):
        report = Telemetry("x").report()
        assert report.to_dict()["schema_version"] == RunReport.SCHEMA_VERSION


class TestSpanObservers:
    def test_enter_exit_events_fire(self):
        tel = Telemetry("x")
        events = []
        tel.add_span_observer(lambda ev, name, s: events.append((ev, name, s)))
        with tel.span("outer"):
            with tel.span("inner"):
                pass
        assert [(e, n) for e, n, _s in events] == [
            ("enter", "outer"),
            ("enter", "inner"),
            ("exit", "inner"),
            ("exit", "outer"),
        ]
        assert events[0][2] == 0.0  # enter carries no duration
        assert events[3][2] >= events[2][2] >= 0.0

    def test_remove_observer(self):
        tel = Telemetry("x")
        events = []
        obs = lambda ev, name, s: events.append(ev)  # noqa: E731
        tel.add_span_observer(obs)
        tel.remove_span_observer(obs)
        with tel.span("a"):
            pass
        assert events == []

    def test_observer_exceptions_swallowed(self):
        tel = Telemetry("x")

        def bad(ev, name, s):
            raise RuntimeError("observer bug")

        tel.add_span_observer(bad)
        with tel.span("a"):  # must not raise
            pass
        assert tel.root.child("a").count == 1

    def test_span_timing_survives_observer(self):
        tel = Telemetry("x")
        tel.add_span_observer(lambda *a: None)
        with tel.span("a"):
            time.sleep(0.01)
        assert tel.root.child("a").seconds >= 0.005


class TestSchemaV3:
    def test_version_is_3(self):
        assert RunReport.SCHEMA_VERSION == 3

    def test_profile_roundtrips(self):
        tel = Telemetry("x")
        tel.profile = {"samples": 5, "span_shares": {"dp": 1.0}}
        report = tel.report(cost=1.0)
        again = RunReport.from_json(report.to_json())
        assert again.profile == {"samples": 5, "span_shares": {"dp": 1.0}}

    def test_profile_defaults_none(self):
        report = Telemetry("x").report()
        assert report.profile is None
        assert RunReport.from_json(report.to_json()).profile is None

    def test_metrics_delta_never_serialized(self):
        rec = MemberRecord(
            index=0,
            method="frt",
            dp_cost=1.0,
            metrics_delta={"pid": 1, "families": []},
        )
        data = rec.to_dict()
        assert "metrics_delta" not in data
        rebuilt = MemberRecord.from_dict({**data, "metrics_delta": {"x": 1}})
        assert rebuilt.metrics_delta is None
