"""Property-based edge-case coverage for instance validation.

``validate_instance`` is the gate every solve path passes through; these
tests pin its behaviour on the awkward inputs users actually produce:
non-finite demands, empty edge sets, demands sitting exactly on a
capacity boundary, and demands just past one.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Graph, Hierarchy, SolverConfig, solve_hgp
from repro.core.engine import check_instance, validate_instance
from repro.errors import InfeasibleError, InvalidInputError


def _hier(leaf_capacity: float = 4.0) -> Hierarchy:
    return Hierarchy([2, 2], [5.0, 1.0, 0.0], leaf_capacity=leaf_capacity)


def _path_graph(n: int) -> Graph:
    return Graph(n, [(i, i + 1, 1.0) for i in range(n - 1)])


class TestNonFiniteDemands:
    @given(
        bad=st.sampled_from([np.nan, np.inf, -np.inf]),
        position=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_nan_inf_demand_rejected(self, bad, position):
        g = _path_graph(4)
        d = np.ones(4)
        d[position] = bad
        with pytest.raises((InvalidInputError, InfeasibleError)):
            validate_instance(g, _hier(), d)

    @given(position=st.integers(min_value=0, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_zero_or_negative_demand_rejected(self, position):
        g = _path_graph(4)
        d = np.ones(4)
        d[position] = 0.0
        with pytest.raises(InvalidInputError):
            validate_instance(g, _hier(), d)
        d[position] = -1.0
        with pytest.raises(InvalidInputError):
            validate_instance(g, _hier(), d)


class TestCapacityBoundaries:
    @given(n=st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_demand_exactly_at_leaf_capacity_is_feasible(self, n):
        g = _path_graph(n)
        d = np.full(n, 4.0)  # == leaf_capacity, one task fills one leaf
        validate_instance(g, _hier(4.0), d)  # must not raise

    def test_total_demand_exactly_at_total_capacity_is_feasible(self):
        hier = _hier(4.0)  # 4 leaves x 4.0 = 16.0 total
        g = _path_graph(4)
        validate_instance(g, hier, np.full(4, 4.0))

    @given(excess=st.floats(min_value=1e-3, max_value=10.0))
    @settings(max_examples=30, deadline=None)
    def test_single_vertex_over_leaf_capacity_raises(self, excess):
        g = _path_graph(3)
        d = np.ones(3)
        d[1] = 4.0 + excess
        with pytest.raises(InfeasibleError):
            validate_instance(g, _hier(4.0), d)

    @given(excess=st.floats(min_value=1e-3, max_value=10.0))
    @settings(max_examples=30, deadline=None)
    def test_total_demand_over_total_capacity_raises(self, excess):
        g = _path_graph(5)
        d = np.full(5, (16.0 + excess) / 5)  # sum just over 16.0 total
        with pytest.raises(InfeasibleError):
            validate_instance(g, _hier(4.0), d)


class TestDegenerateGraphs:
    def test_empty_graph_rejected(self):
        with pytest.raises(InvalidInputError):
            validate_instance(Graph(0, []), _hier(), np.zeros(0))

    @given(n=st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_edgeless_graph_validates_and_solves(self, n):
        g = Graph(n, [])
        d = np.ones(n)
        validate_instance(g, _hier(), d)
        result = solve_hgp(
            g, _hier(), d, SolverConfig(seed=0, n_trees=1, refine=False)
        )
        assert result.cost == 0.0  # no edges, nothing to cut

    @given(extra=st.integers(min_value=1, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_wrong_demand_shape_rejected(self, extra):
        g = _path_graph(3)
        with pytest.raises(InvalidInputError):
            validate_instance(g, _hier(), np.ones(3 + extra))
        with pytest.raises(InvalidInputError):
            validate_instance(g, _hier(), np.ones((3, 1)))


class TestAlias:
    def test_check_instance_is_validate_instance(self):
        assert check_instance is validate_instance
