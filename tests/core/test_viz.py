"""Tests for the DOT exporters."""

import numpy as np
import pytest

from repro import Graph, Placement
from repro.decomposition.spectral_tree import spectral_decomposition_tree
from repro.graph.generators import grid_2d
from repro.viz import decomposition_tree_to_dot, graph_to_dot, hierarchy_to_dot


@pytest.fixture
def placed(hier_2x4):
    g = grid_2d(2, 3, weight_range=(0.5, 2.0), seed=0)
    d = np.full(6, 0.3)
    return Placement(g, hier_2x4, d, np.array([0, 0, 1, 1, 4, 4]))


class TestGraphDot:
    def test_structure(self, placed):
        dot = graph_to_dot(placed.graph)
        assert dot.startswith("graph G {")
        assert dot.endswith("}")
        # One node line per vertex, one edge line per edge.
        assert dot.count(" -- ") == placed.graph.m

    def test_placement_colouring(self, placed):
        dot = graph_to_dot(placed.graph, placed)
        assert "leaf 4" in dot
        assert "fillcolor=" in dot

    def test_empty_graph(self):
        dot = graph_to_dot(Graph(2, []))
        assert " -- " not in dot


class TestTreeDot:
    def test_all_nodes_and_edges(self, placed):
        tree = spectral_decomposition_tree(placed.graph, seed=0)
        dot = decomposition_tree_to_dot(tree)
        assert dot.count(" -- ") == tree.n_nodes - 1
        for v in range(placed.graph.n):
            assert f'"v{v}"' in dot


class TestHierarchyDot:
    def test_nodes_and_edges(self, placed):
        dot = hierarchy_to_dot(placed)
        hier = placed.hierarchy
        n_nodes = sum(hier.count(j) for j in range(hier.h + 1))
        n_edges = n_nodes - 1
        assert dot.count("label=\"L") == n_nodes
        assert dot.count(" -- ") == n_edges

    def test_overload_highlight(self, hier_2x4):
        g = Graph(3, [])
        p = Placement(g, hier_2x4, np.array([0.8, 0.8, 0.1]), np.array([0, 0, 1]))
        dot = hierarchy_to_dot(p)
        assert "#EE6677" in dot  # overloaded leaf colour
