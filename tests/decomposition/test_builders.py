"""Tests applied uniformly to every decomposition-tree builder."""

import numpy as np
import pytest

from repro import Graph
from repro.decomposition import (
    BUILDERS,
    contraction_decomposition_tree,
    frt_decomposition_tree,
    min_leaf_cut,
)
from repro.errors import InvalidInputError
from repro.graph.generators import grid_2d, planted_partition, power_law

ALL_BUILDERS = sorted(BUILDERS)


@pytest.fixture(scope="module")
def mesh():
    return grid_2d(4, 4, weight_range=(0.5, 2.0), seed=1)


@pytest.mark.parametrize("name", ALL_BUILDERS)
class TestBuilderContract:
    """Every builder must produce a valid decomposition tree."""

    def test_structure_valid(self, name, mesh):
        tree = BUILDERS[name](mesh, seed=0)
        tree.validate()

    def test_leaf_bijection(self, name, mesh):
        tree = BUILDERS[name](mesh, seed=0)
        verts = tree.leaf_vertex[tree.leaf_vertex >= 0]
        assert sorted(verts.tolist()) == list(range(mesh.n))

    def test_deterministic_given_seed(self, name, mesh):
        a = BUILDERS[name](mesh, seed=42)
        b = BUILDERS[name](mesh, seed=42)
        assert a.n_nodes == b.n_nodes
        assert np.array_equal(a.parent, b.parent)
        assert np.allclose(a.edge_weight, b.edge_weight)

    def test_proposition1(self, name, mesh):
        tree = BUILDERS[name](mesh, seed=3)
        rng = np.random.default_rng(7)
        for _ in range(10):
            subset = rng.choice(
                mesh.n, size=int(rng.integers(1, mesh.n)), replace=False
            )
            assert min_leaf_cut(tree, subset) >= mesh.cut_weight(subset) - 1e-9

    def test_singleton_graph(self, name):
        g = Graph(1, [])
        tree = BUILDERS[name](g, seed=0)
        tree.validate()
        assert tree.leaf_vertex[tree.leaf_node_of_vertex[0]] == 0


@pytest.mark.parametrize(
    "name", [b for b in ALL_BUILDERS if b != "frt"]
)
def test_disconnected_graphs_supported(name):
    g = Graph(6, [(0, 1, 1.0), (2, 3, 1.0)])
    tree = BUILDERS[name](g, seed=0)
    tree.validate()


def test_frt_rejects_disconnected():
    g = Graph(4, [(0, 1, 1.0)])
    with pytest.raises(InvalidInputError):
        frt_decomposition_tree(g, seed=0)


def test_contraction_groups_heavy_edges():
    """Heavy-edge contraction should put the two cliques in separate subtrees."""
    g = planted_partition(2, 8, 1.0, 0.3, weight_in=10.0, weight_out=0.1, seed=0)
    tree = contraction_decomposition_tree(g, seed=1)
    # The root split should align with the blocks: check the cut weight of
    # the root's first child's leaf set against the planted cut.
    sets = tree.leaf_sets()
    kids = tree.children[tree.root]
    best = min(g.cut_weight(sets[c]) for c in kids)
    blocks_cut = g.cut_weight(np.arange(8))
    assert best <= 2.0 * blocks_cut  # near-planted separation


def test_builders_scale_to_power_law():
    g = power_law(80, seed=2)
    for name in ("spectral", "contraction"):
        tree = BUILDERS[name](g, seed=0)
        assert tree.leaf_sets()[tree.root].size == 80
