"""Tests for placement-guided trees and the iterated pipeline."""

import numpy as np
import pytest

from repro import Graph, Placement, SolverConfig
from repro.decomposition.guided import placement_guided_tree, solve_hgp_iterated
from repro.decomposition.tree import min_leaf_cut
from repro.core.solver import solve_hgp
from repro.graph.generators import planted_partition, random_demands


@pytest.fixture
def placed(hier_2x4):
    g = planted_partition(4, 6, 0.8, 0.05, seed=2)
    d = random_demands(g.n, hier_2x4.total_capacity, fill=0.6, seed=3)
    res = solve_hgp(g, hier_2x4, d, SolverConfig(seed=0, n_trees=2, refine=False))
    return res.placement


class TestGuidedTree:
    def test_valid_decomposition_tree(self, placed):
        tree = placement_guided_tree(placed, seed=0)
        tree.validate()
        assert tree.leaf_sets()[tree.root].size == placed.graph.n

    def test_proposition1_holds(self, placed):
        tree = placement_guided_tree(placed, seed=0)
        rng = np.random.default_rng(5)
        g = placed.graph
        for _ in range(10):
            subset = rng.choice(g.n, size=int(rng.integers(1, g.n)), replace=False)
            assert min_leaf_cut(tree, subset) >= g.cut_weight(subset) - 1e-9

    def test_structure_mirrors_placement(self, placed):
        """Tasks sharing a leaf must share a subtree below the root split."""
        tree = placement_guided_tree(placed, seed=0)
        sets = tree.leaf_sets()
        # For every hierarchy leaf's task group there exists a tree node
        # whose leaf set is exactly that group.
        node_sets = {tuple(sets[v].tolist()) for v in range(tree.n_nodes)}
        for leaf in range(placed.hierarchy.k):
            group = np.nonzero(placed.leaf_of == leaf)[0]
            if group.size:
                assert tuple(group.tolist()) in node_sets

    def test_empty_placement_rejected(self, hier_2x4):
        g = Graph(0, [])
        with pytest.raises(Exception):
            p = Placement(g, hier_2x4, np.array([]), np.array([], dtype=np.int64))
            placement_guided_tree(p)

    def test_singleton(self, hier_2x4):
        g = Graph(1, [])
        p = Placement(g, hier_2x4, np.array([0.2]), np.array([3]))
        tree = placement_guided_tree(p, seed=0)
        tree.validate()


class TestIteratedSolve:
    def test_never_worse_than_plain(self, hier_2x4):
        g = planted_partition(4, 8, 0.7, 0.05, seed=3)
        d = random_demands(g.n, hier_2x4.total_capacity, fill=0.65, skew=0.4, seed=3)
        cfg = SolverConfig(seed=0, n_trees=2, refine=False)
        base = solve_hgp(g, hier_2x4, d, cfg)
        it = solve_hgp_iterated(g, hier_2x4, d, cfg, rounds=2)
        assert it.cost <= base.cost + 1e-9

    def test_meta_records_rounds(self, hier_2x4):
        g = planted_partition(2, 6, 0.8, 0.05, seed=4)
        d = random_demands(g.n, hier_2x4.total_capacity, fill=0.5, seed=4)
        it = solve_hgp_iterated(
            g, hier_2x4, d, SolverConfig(seed=0, n_trees=2), rounds=1
        )
        assert "guided_rounds" in it.placement.meta

    def test_zero_rounds_is_plain(self, hier_2x4):
        g = planted_partition(2, 6, 0.8, 0.05, seed=5)
        d = random_demands(g.n, hier_2x4.total_capacity, fill=0.5, seed=5)
        cfg = SolverConfig(seed=0, n_trees=2, refine=False)
        base = solve_hgp(g, hier_2x4, d, cfg)
        it = solve_hgp_iterated(g, hier_2x4, d, cfg, rounds=0)
        assert it.cost == base.cost

    def test_violation_bound_preserved(self, hier_2x4):
        g = planted_partition(4, 8, 0.7, 0.05, seed=6)
        d = random_demands(g.n, hier_2x4.total_capacity, fill=0.7, skew=0.5, seed=6)
        it = solve_hgp_iterated(
            g, hier_2x4, d, SolverConfig(seed=0, n_trees=2), rounds=2
        )
        assert it.placement.max_violation() <= (
            (1 + it.grid.epsilon) * (1 + hier_2x4.h) + 1e-9
        )
