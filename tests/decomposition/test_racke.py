"""Tests for the tree-ensemble (Räcke substitution) layer."""

import numpy as np
import pytest

from repro import Graph
from repro.decomposition.racke import DEFAULT_METHODS, build_tree, racke_ensemble
from repro.errors import InvalidInputError


class TestEnsemble:
    def test_size(self, grid44):
        trees = racke_ensemble(grid44, n_trees=5, seed=0)
        assert len(trees) == 5

    def test_all_valid(self, grid44):
        for tree in racke_ensemble(grid44, n_trees=4, seed=1):
            tree.validate()

    def test_round_robin_methods(self, grid44):
        trees = racke_ensemble(
            grid44, n_trees=4, methods=("spectral", "contraction"), seed=2
        )
        assert len(trees) == 4

    def test_seeds_give_diversity(self, grid44):
        trees = racke_ensemble(grid44, n_trees=4, methods=("spectral",), seed=3)
        # Same builder, different streams: at least two distinct shapes.
        shapes = {tuple(t.parent.tolist()) for t in trees}
        assert len(shapes) >= 2

    def test_reproducible(self, grid44):
        a = racke_ensemble(grid44, n_trees=3, seed=11)
        b = racke_ensemble(grid44, n_trees=3, seed=11)
        for ta, tb in zip(a, b):
            assert np.array_equal(ta.parent, tb.parent)

    def test_disconnected_drops_frt(self):
        g = Graph(4, [(0, 1, 1.0)])
        trees = racke_ensemble(g, n_trees=4, seed=0)  # must not crash
        assert len(trees) == 4

    def test_bad_inputs(self, grid44):
        with pytest.raises(InvalidInputError):
            racke_ensemble(grid44, n_trees=0)
        with pytest.raises(InvalidInputError):
            racke_ensemble(grid44, n_trees=2, methods=("nope",))
        with pytest.raises(InvalidInputError):
            build_tree(grid44, "nope")

    def test_default_methods_registered(self):
        from repro.decomposition.racke import BUILDERS

        assert set(DEFAULT_METHODS) <= set(BUILDERS)
