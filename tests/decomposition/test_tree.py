"""Tests for decomposition trees: structure, w_T definition, min leaf cuts."""

import numpy as np
import pytest

from repro.errors import InvalidInputError
from repro.decomposition.tree import TreeAssembler, min_leaf_cut
from repro.graph.generators import grid_2d


@pytest.fixture
def path_tree(path3):
    """Decomposition tree ((0,1),2) over the path a-b-c."""
    asm = TreeAssembler(path3)
    l0 = asm.add_leaf(0)
    l1 = asm.add_leaf(1)
    l2 = asm.add_leaf(2)
    inner = asm.add_internal([l0, l1])
    root = asm.add_internal([inner, l2])
    return asm.finish(root)


class TestAssembler:
    def test_leaf_bijection_enforced(self, path3):
        asm = TreeAssembler(path3)
        l0 = asm.add_leaf(0)
        l1 = asm.add_leaf(1)
        root = asm.add_internal([l0, l1])
        with pytest.raises(InvalidInputError):
            asm.finish(root)  # vertex 2 missing

    def test_duplicate_parent_rejected(self, path3):
        asm = TreeAssembler(path3)
        l0 = asm.add_leaf(0)
        asm.add_internal([l0])
        with pytest.raises(InvalidInputError):
            asm.add_internal([l0])

    def test_vertex_range_checked(self, path3):
        asm = TreeAssembler(path3)
        with pytest.raises(InvalidInputError):
            asm.add_leaf(5)

    def test_edge_weights_are_cut_weights(self, path_tree, path3):
        # Node over {0,1}: cut weight = w(1,2) = 3. Leaves: boundary of
        # singletons.
        sets = path_tree.leaf_sets()
        for v in range(path_tree.n_nodes):
            if path_tree.parent[v] >= 0:
                assert path_tree.edge_weight[v] == pytest.approx(
                    path3.cut_weight(sets[v])
                )

    def test_validate_passes(self, path_tree):
        path_tree.validate()

    def test_validate_catches_corruption(self, path_tree):
        path_tree.edge_weight[0] += 17.0
        from repro.errors import SolverError

        with pytest.raises(SolverError):
            path_tree.validate()


class TestStructure:
    def test_postorder_children_first(self, path_tree):
        order = path_tree.postorder().tolist()
        pos = {v: i for i, v in enumerate(order)}
        for v in range(path_tree.n_nodes):
            for c in path_tree.children[v]:
                assert pos[c] < pos[v]

    def test_depth(self, path_tree):
        assert path_tree.depth() == 2

    def test_leaf_sets_nested(self, path_tree):
        sets = path_tree.leaf_sets()
        assert sets[path_tree.root].tolist() == [0, 1, 2]


class TestMinLeafCut:
    def test_singleton(self, path_tree, path3):
        # Separating {0}: cheapest tree cut is its leaf edge, weight = 2.
        assert min_leaf_cut(path_tree, np.array([0])) == pytest.approx(2.0)

    def test_contiguous_pair(self, path_tree):
        # Separating {0,1}: cut the internal edge of weight 3.
        assert min_leaf_cut(path_tree, np.array([0, 1])) == pytest.approx(3.0)

    def test_noncontiguous_set(self, path_tree):
        # Separating {0,2} from {1}: must isolate leaf 1 (weight = w(0,1)+w(1,2) = 5).
        val = min_leaf_cut(path_tree, np.array([0, 2]))
        assert val == pytest.approx(5.0)

    def test_trivial_sets(self, path_tree):
        assert min_leaf_cut(path_tree, np.array([], dtype=np.int64)) == 0.0
        assert min_leaf_cut(path_tree, np.array([0, 1, 2])) == 0.0

    def test_proposition1_random_sets(self):
        """w_T(CUT_T(P)) >= w(CUT(m(P))) for arbitrary leaf sets (Prop. 1)."""
        from repro.decomposition.spectral_tree import spectral_decomposition_tree

        g = grid_2d(4, 4, weight_range=(0.5, 2.0), seed=3)
        tree = spectral_decomposition_tree(g, seed=0)
        rng = np.random.default_rng(9)
        for _ in range(25):
            size = int(rng.integers(1, g.n))
            subset = rng.choice(g.n, size=size, replace=False)
            assert min_leaf_cut(tree, subset) >= g.cut_weight(subset) - 1e-9
