"""Tests for Gomory–Hu trees: every pairwise min-cut in n−1 flows."""

import itertools

import pytest

from repro import Graph
from repro.errors import InvalidInputError
from repro.flow.gomory_hu import gomory_hu_tree, min_cut_from_tree
from repro.flow.maxflow import max_flow
from repro.graph.generators import grid_2d, random_regular


class TestGomoryHu:
    def test_tree_shape(self):
        g = grid_2d(3, 3)
        parent, flow = gomory_hu_tree(g)
        assert parent[0] == -1
        assert (parent[1:] >= 0).all()
        # A tree: following parents always reaches the root.
        for v in range(9):
            seen = set()
            while v != 0:
                assert v not in seen
                seen.add(v)
                v = int(parent[v])

    def test_all_pairs_grid(self):
        g = grid_2d(3, 3, weight_range=(0.5, 2.0), seed=1)
        parent, flow = gomory_hu_tree(g)
        for u, v in itertools.combinations(range(9), 2):
            direct, _ = max_flow(g, u, v)
            assert min_cut_from_tree(parent, flow, u, v) == pytest.approx(
                direct, abs=1e-9
            ), (u, v)

    def test_all_pairs_expander(self):
        g = random_regular(12, 3, seed=5)
        parent, flow = gomory_hu_tree(g)
        for u, v in itertools.combinations(range(12), 2):
            direct, _ = max_flow(g, u, v)
            assert min_cut_from_tree(parent, flow, u, v) == pytest.approx(direct)

    def test_same_vertex_inf(self):
        g = grid_2d(2, 2)
        parent, flow = gomory_hu_tree(g)
        assert min_cut_from_tree(parent, flow, 1, 1) == float("inf")

    def test_disconnected_rejected(self):
        g = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(InvalidInputError):
            gomory_hu_tree(g)

    def test_single_vertex(self):
        parent, flow = gomory_hu_tree(Graph(1, []))
        assert parent.tolist() == [-1]

    def test_bad_pair(self):
        g = grid_2d(2, 2)
        parent, flow = gomory_hu_tree(g)
        with pytest.raises(InvalidInputError):
            min_cut_from_tree(parent, flow, 0, 99)

    def test_tree_edge_weights_are_cuts(self):
        """Each tree edge's flow equals the min cut between its endpoints."""
        g = grid_2d(3, 3, weight_range=(1.0, 3.0), seed=2)
        parent, flow = gomory_hu_tree(g)
        for v in range(1, 9):
            direct, _ = max_flow(g, v, int(parent[v]))
            assert flow[v] == pytest.approx(direct)
