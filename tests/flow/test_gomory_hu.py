"""Tests for Gomory–Hu trees: every pairwise min-cut in n−1 flows."""

import itertools

import pytest

from repro import Graph
from repro.errors import InvalidInputError
from repro.flow.gomory_hu import gomory_hu_tree, min_cut_from_tree
from repro.flow.maxflow import max_flow
from repro.graph.generators import grid_2d, random_regular


class TestGomoryHu:
    def test_tree_shape(self):
        g = grid_2d(3, 3)
        parent, flow = gomory_hu_tree(g)
        assert parent[0] == -1
        assert (parent[1:] >= 0).all()
        # A tree: following parents always reaches the root.
        for v in range(9):
            seen = set()
            while v != 0:
                assert v not in seen
                seen.add(v)
                v = int(parent[v])

    def test_all_pairs_grid(self):
        g = grid_2d(3, 3, weight_range=(0.5, 2.0), seed=1)
        parent, flow = gomory_hu_tree(g)
        for u, v in itertools.combinations(range(9), 2):
            direct, _ = max_flow(g, u, v)
            assert min_cut_from_tree(parent, flow, u, v) == pytest.approx(
                direct, abs=1e-9
            ), (u, v)

    def test_all_pairs_expander(self):
        g = random_regular(12, 3, seed=5)
        parent, flow = gomory_hu_tree(g)
        for u, v in itertools.combinations(range(12), 2):
            direct, _ = max_flow(g, u, v)
            assert min_cut_from_tree(parent, flow, u, v) == pytest.approx(direct)

    def test_same_vertex_inf(self):
        g = grid_2d(2, 2)
        parent, flow = gomory_hu_tree(g)
        assert min_cut_from_tree(parent, flow, 1, 1) == float("inf")

    def test_disconnected_rejected(self):
        g = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(InvalidInputError):
            gomory_hu_tree(g)

    def test_single_vertex(self):
        parent, flow = gomory_hu_tree(Graph(1, []))
        assert parent.tolist() == [-1]

    def test_bad_pair(self):
        g = grid_2d(2, 2)
        parent, flow = gomory_hu_tree(g)
        with pytest.raises(InvalidInputError):
            min_cut_from_tree(parent, flow, 0, 99)

    def test_tree_edge_weights_are_cuts(self):
        """Each tree edge's flow equals the min cut between its endpoints."""
        g = grid_2d(3, 3, weight_range=(1.0, 3.0), seed=2)
        parent, flow = gomory_hu_tree(g)
        for v in range(1, 9):
            direct, _ = max_flow(g, v, int(parent[v]))
            assert flow[v] == pytest.approx(direct)


class TestEngineReuse:
    def test_single_engine_matches_fresh_per_pair(self):
        """Gusfield on one frozen engine == fresh engines per iteration."""
        from repro.flow.maxflow import DinicMaxFlow

        g = random_regular(10, 3, seed=4, weight_range=(0.5, 2.0))
        parent, flow = gomory_hu_tree(g, use_cache=False)
        # Replay Gusfield with a fresh engine per solve; trees must agree.
        n = g.n
        p2 = [0] * n
        p2[0] = -1
        f2 = [0.0] * n
        for i in range(1, n):
            t = p2[i]
            engine = DinicMaxFlow.from_graph(g)
            value = engine.solve(i, t)
            side = engine.min_cut_side(i)
            f2[i] = value
            for j in range(i + 1, n):
                if p2[j] == t and side[j]:
                    p2[j] = i
            if p2[t] >= 0 and side[p2[t]]:
                p2[i] = p2[t]
                p2[t] = i
                f2[i] = f2[t]
                f2[t] = value
        assert list(parent) == p2
        assert list(flow) == pytest.approx(f2)

    def test_from_graph_engine_is_reusable(self):
        from repro.flow.maxflow import DinicMaxFlow

        g = grid_2d(3, 3, weight_range=(0.5, 2.0), seed=2)
        engine = DinicMaxFlow.from_graph(g)
        for s, t in [(0, 8), (1, 7), (0, 8)]:
            value, _side = max_flow(g, s, t)
            assert engine.solve(s, t) == pytest.approx(value)
