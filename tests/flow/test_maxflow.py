"""Tests for the Dinic max-flow engine."""

import numpy as np
import pytest

from repro import Graph
from repro.errors import InvalidInputError
from repro.flow.maxflow import DinicMaxFlow, max_flow
from repro.graph.generators import grid_2d, random_regular


class TestDinicBasic:
    def test_single_edge(self):
        g = Graph(2, [(0, 1, 3.5)])
        value, side = max_flow(g, 0, 1)
        assert value == pytest.approx(3.5)
        assert side.tolist() == [True, False]

    def test_path_bottleneck(self):
        g = Graph(3, [(0, 1, 5.0), (1, 2, 2.0)])
        value, _ = max_flow(g, 0, 2)
        assert value == pytest.approx(2.0)

    def test_parallel_paths_add(self):
        # Two disjoint 0->3 paths of capacities 1 and 2.
        g = Graph(4, [(0, 1, 1.0), (1, 3, 1.0), (0, 2, 2.0), (2, 3, 2.0)])
        value, _ = max_flow(g, 0, 3)
        assert value == pytest.approx(3.0)

    def test_disconnected_zero_flow(self):
        g = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        value, side = max_flow(g, 0, 2)
        assert value == 0.0
        assert side[0] and side[1] and not side[2]

    def test_grid_corner_cut(self):
        g = grid_2d(4, 4)
        value, _ = max_flow(g, 0, 15)
        assert value == pytest.approx(2.0)  # corner degree = 2

    def test_min_cut_certifies_flow(self):
        g = random_regular(16, 3, seed=0)
        value, side = max_flow(g, 0, 9)
        assert g.cut_weight(side) == pytest.approx(value)

    def test_directed_arc(self):
        eng = DinicMaxFlow(3)
        eng.add_edge(0, 1, 4.0, directed=True)
        eng.add_edge(1, 2, 4.0, directed=True)
        assert eng.solve(0, 2) == pytest.approx(4.0)
        # No flow against arc direction.
        eng2 = DinicMaxFlow(2)
        eng2.add_edge(0, 1, 4.0, directed=True)
        assert eng2.solve(1, 0) == pytest.approx(0.0)

    def test_resolve_resets_capacities(self):
        g = Graph(3, [(0, 1, 2.0), (1, 2, 2.0)])
        eng = DinicMaxFlow(3)
        for u, v, w in g.iter_edges():
            eng.add_edge(u, v, w)
        assert eng.solve(0, 2) == pytest.approx(2.0)
        assert eng.solve(0, 2) == pytest.approx(2.0)  # same answer again

    def test_resolve_restores_from_frozen_master(self):
        # The re-solve path copies from the immutable ndarray master
        # (no O(m) Python-list reconversion) and keeps the same buffer.
        g = random_regular(16, 3, seed=2)
        eng = DinicMaxFlow(g.n)
        for u, v, w in g.iter_edges():
            eng.add_edge(u, v, w)
        first = eng.solve(0, 7)
        master = eng._caps0
        assert not master.flags.writeable
        drained = eng.caps.copy()
        buffer_before = eng.caps
        second = eng.solve(3, 12)
        assert eng.caps is buffer_before  # reused, not reallocated
        assert not np.array_equal(drained, master)  # first solve mutated
        assert first == pytest.approx(eng.solve(0, 7))
        assert second == pytest.approx(eng.solve(3, 12))

    def test_resolve_many_pairs_matches_fresh_engines(self):
        g = grid_2d(4, 4)
        eng = DinicMaxFlow(g.n)
        for u, v, w in g.iter_edges():
            eng.add_edge(u, v, w)
        for s, t in [(0, 15), (3, 12), (0, 5), (10, 2)]:
            fresh_value, _ = max_flow(g, s, t)
            assert eng.solve(s, t) == pytest.approx(fresh_value)

    def test_errors(self):
        eng = DinicMaxFlow(3)
        with pytest.raises(InvalidInputError):
            eng.add_edge(0, 0, 1.0)
        with pytest.raises(InvalidInputError):
            eng.add_edge(0, 5, 1.0)
        with pytest.raises(InvalidInputError):
            eng.add_edge(0, 1, -1.0)
        with pytest.raises(InvalidInputError):
            eng.solve(1, 1)
        with pytest.raises(InvalidInputError):
            DinicMaxFlow(1)

    def test_add_after_solve_rejected(self):
        eng = DinicMaxFlow(3)
        eng.add_edge(0, 1, 1.0)
        eng.solve(0, 1)
        with pytest.raises(InvalidInputError):
            eng.add_edge(1, 2, 1.0)


class TestFlowEqualsMinCut:
    """Max-flow/min-cut duality on random instances (the LP certificate)."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_duality_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n = 12
        edges = []
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() < 0.4:
                    edges.append((i, j, float(rng.uniform(0.5, 3.0))))
        g = Graph(n, edges)
        s, t = 0, n - 1
        value, side = max_flow(g, s, t)
        assert side[s] and not side[t]
        assert g.cut_weight(side) == pytest.approx(value, abs=1e-9)

    def test_flow_upper_bounded_by_any_cut(self):
        g = grid_2d(3, 5, weight_range=(1.0, 2.0), seed=7)
        value, _ = max_flow(g, 0, 14)
        rng = np.random.default_rng(1)
        for _ in range(20):
            mask = rng.random(15) < 0.5
            mask[0], mask[14] = True, False
            assert value <= g.cut_weight(mask) + 1e-9
