"""Tests for Stoer–Wagner global min cut and s-t cuts."""

import numpy as np
import pytest

from repro import Graph
from repro.errors import InvalidInputError
from repro.flow.maxflow import max_flow
from repro.flow.mincut import isolating_cut_weight, st_min_cut, stoer_wagner
from repro.graph.generators import grid_2d, random_regular


class TestStoerWagner:
    def test_two_cliques_bridge(self, two_blocks):
        value, mask = stoer_wagner(two_blocks)
        assert value == pytest.approx(0.5)
        assert mask.sum() in (6, 6)

    def test_cycle(self):
        g = Graph(5, [(i, (i + 1) % 5, 1.0) for i in range(5)])
        value, mask = stoer_wagner(g)
        assert value == pytest.approx(2.0)  # any two cycle edges

    def test_star_cuts_lightest_leaf(self):
        g = Graph(4, [(0, 1, 1.0), (0, 2, 2.0), (0, 3, 3.0)])
        value, mask = stoer_wagner(g)
        assert value == pytest.approx(1.0)
        assert mask.sum() in (1, 3)

    def test_disconnected_zero(self):
        g = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        value, mask = stoer_wagner(g)
        assert value == 0.0
        assert 0 < mask.sum() < 4
        assert g.cut_weight(mask) == 0.0

    def test_matches_gomory_hu_minimum(self):
        from repro.flow.gomory_hu import gomory_hu_tree

        g = random_regular(14, 3, seed=3)
        value, mask = stoer_wagner(g)
        parent, flow = gomory_hu_tree(g)
        # Global min cut = lightest Gomory-Hu tree edge.
        assert value == pytest.approx(float(flow[1:].min()))
        assert g.cut_weight(mask) == pytest.approx(value)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_certificate_and_lower_bound(self, seed):
        g = grid_2d(4, 4, weight_range=(0.5, 2.0), seed=seed)
        value, mask = stoer_wagner(g)
        assert g.cut_weight(mask) == pytest.approx(value)
        # Global min cut lower-bounds every s-t cut.
        v01, _ = max_flow(g, 0, 15)
        assert value <= v01 + 1e-9

    def test_too_small(self):
        with pytest.raises(InvalidInputError):
            stoer_wagner(Graph(1, []))


class TestStMinCut:
    def test_basic(self, two_blocks):
        value, side = st_min_cut(two_blocks, 0, 6)
        assert value == pytest.approx(0.5)
        assert side[:6].all() and not side[6:].any()

    def test_bad_terminals(self, two_blocks):
        with pytest.raises(InvalidInputError):
            st_min_cut(two_blocks, 3, 3)


class TestIsolatingCut:
    def test_equals_boundary(self, grid44):
        s = np.array([0, 1, 4, 5])
        assert isolating_cut_weight(grid44, s) == grid44.cut_weight(s)
