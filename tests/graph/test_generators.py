"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.errors import InvalidInputError
from repro.graph.generators import (
    grid_2d,
    layered_dag,
    planted_partition,
    power_law,
    random_demands,
    random_geometric,
    random_regular,
    random_tree,
    random_weights,
    torus_2d,
)


class TestGrid:
    def test_counts(self):
        g = grid_2d(3, 5)
        assert g.n == 15
        assert g.m == 3 * 4 + 2 * 5  # horizontal + vertical

    def test_unit_weights_by_default(self):
        g = grid_2d(2, 2)
        assert np.allclose(g.edges_w, 1.0)

    def test_weight_range(self):
        g = grid_2d(3, 3, weight_range=(2.0, 4.0), seed=0)
        assert g.edges_w.min() >= 2.0
        assert g.edges_w.max() <= 4.0

    def test_determinism(self):
        a = grid_2d(3, 3, weight_range=(1, 2), seed=5)
        b = grid_2d(3, 3, weight_range=(1, 2), seed=5)
        assert a == b

    def test_bad_dims(self):
        with pytest.raises(InvalidInputError):
            grid_2d(0, 3)


class TestTorus:
    def test_regular_degree(self):
        g = torus_2d(4, 5)
        assert all(g.degree(v) == 4 for v in range(g.n))

    def test_small_dims_rejected(self):
        with pytest.raises(InvalidInputError):
            torus_2d(2, 5)


class TestRandomRegular:
    def test_degrees(self):
        g = random_regular(20, 3, seed=1)
        assert all(g.degree(v) == 3 for v in range(20))

    def test_odd_product_rejected(self):
        with pytest.raises(InvalidInputError):
            random_regular(5, 3)

    def test_d_too_large(self):
        with pytest.raises(InvalidInputError):
            random_regular(4, 4)

    def test_determinism(self):
        assert random_regular(12, 3, seed=9) == random_regular(12, 3, seed=9)


class TestPowerLaw:
    def test_size_and_connectivity(self):
        g = power_law(60, m_per_node=2, seed=3)
        assert g.n == 60
        assert g.is_connected()

    def test_heavy_tail(self):
        g = power_law(200, m_per_node=2, seed=4)
        degs = np.array([g.degree(v) for v in range(g.n)])
        # Hubs exist: max degree far above the median.
        assert degs.max() >= 4 * np.median(degs)

    def test_bad_params(self):
        with pytest.raises(InvalidInputError):
            power_law(3, m_per_node=3)


class TestPlantedPartition:
    def test_block_structure(self):
        g = planted_partition(3, 10, 1.0, 0.0, seed=0)
        # p_out = 0: three disconnected cliques.
        ncomp, _ = g.connected_components()
        assert ncomp == 3

    def test_weights_assigned_by_block(self):
        g = planted_partition(2, 4, 1.0, 1.0, weight_in=5.0, weight_out=0.5, seed=0)
        block = np.arange(8) // 4
        for u, v, w in g.iter_edges():
            expected = 5.0 if block[u] == block[v] else 0.5
            assert w == expected

    def test_bad_probs(self):
        with pytest.raises(InvalidInputError):
            planted_partition(2, 3, 0.1, 0.9)


class TestGeometric:
    def test_radius_effect(self):
        sparse = random_geometric(50, 0.1, seed=2)
        dense = random_geometric(50, 0.5, seed=2)
        assert dense.m > sparse.m

    def test_bad_radius(self):
        with pytest.raises(InvalidInputError):
            random_geometric(10, 0.0)


class TestRandomTree:
    def test_is_tree(self):
        g = random_tree(30, seed=7)
        assert g.m == 29
        assert g.is_connected()

    def test_singleton(self):
        g = random_tree(1)
        assert g.n == 1 and g.m == 0


class TestLayeredDag:
    def test_shape(self):
        g = layered_dag(4, 5, fan_out=2, seed=0)
        assert g.n == 20
        # Edges only between adjacent layers.
        for u, v, _ in g.iter_edges():
            assert abs(u // 5 - v // 5) == 1

    def test_bad_fanout(self):
        with pytest.raises(InvalidInputError):
            layered_dag(3, 2, fan_out=3)


class TestRandomWeights:
    def test_reweights_in_range(self, grid44):
        g = random_weights(grid44, 3.0, 5.0, seed=0)
        assert g.n == grid44.n and g.m == grid44.m
        assert g.edges_w.min() >= 3.0 and g.edges_w.max() <= 5.0

    def test_bad_range(self, grid44):
        with pytest.raises(InvalidInputError):
            random_weights(grid44, 2.0, 1.0)


class TestRandomDemands:
    def test_total_fill(self):
        d = random_demands(20, 8.0, fill=0.5, seed=1)
        assert d.sum() == pytest.approx(4.0)

    def test_entries_within_unit(self):
        d = random_demands(10, 8.0, fill=1.0, skew=2.0, seed=2)
        assert d.min() > 0
        assert d.max() <= 1.0

    def test_zero_skew_uniform(self):
        d = random_demands(8, 4.0, fill=0.5, skew=0.0)
        assert np.allclose(d, d[0])

    def test_bad_fill(self):
        with pytest.raises(InvalidInputError):
            random_demands(5, 4.0, fill=0.0)


class TestHypercube:
    def test_structure(self):
        from repro.graph.generators import hypercube

        g = hypercube(3)
        assert g.n == 8
        assert g.m == 12  # dim * 2^(dim-1)
        assert all(g.degree(v) == 3 for v in range(8))
        assert g.is_connected()

    def test_hamming_neighbours(self):
        from repro.graph.generators import hypercube

        g = hypercube(4)
        for u, v, _ in g.iter_edges():
            assert bin(u ^ v).count("1") == 1

    def test_bad_dim(self):
        from repro.graph.generators import hypercube

        with pytest.raises(InvalidInputError):
            hypercube(0)
        with pytest.raises(InvalidInputError):
            hypercube(20)


class TestRmat:
    def test_size_and_tail(self):
        from repro.graph.generators import rmat

        g = rmat(8, edge_factor=4, seed=1)
        assert g.n == 256
        degs = np.array([g.degree(v) for v in range(g.n)])
        # Heavy tail: hubs far above the median of connected vertices.
        pos = degs[degs > 0]
        assert degs.max() >= 5 * np.median(pos)

    def test_deterministic(self):
        from repro.graph.generators import rmat

        assert rmat(6, seed=3) == rmat(6, seed=3)

    def test_probs_validated(self):
        from repro.graph.generators import rmat

        with pytest.raises(InvalidInputError):
            rmat(5, probs=(0.5, 0.5, 0.5, 0.5))
        with pytest.raises(InvalidInputError):
            rmat(1)


class TestGrid3d:
    def test_size_and_degrees(self):
        from repro.graph.generators import grid_3d

        g = grid_3d(4, 5, 6)
        assert g.n == 120
        # m = 3*nx*ny*nz - ny*nz - nx*nz - nx*ny
        assert g.m == 3 * 120 - 5 * 6 - 4 * 6 - 4 * 5
        degs = np.array([g.degree(v) for v in range(g.n)])
        assert degs.max() == 6
        assert degs.min() == 3  # corners

    def test_neighbours_are_adjacent_cells(self):
        from repro.graph.generators import grid_3d

        nx, ny, nz = 3, 4, 5
        g = grid_3d(nx, ny, nz)
        for u, v, _ in g.iter_edges():
            xu, r = divmod(u, ny * nz)
            yu, zu = divmod(r, nz)
            xv, r = divmod(v, ny * nz)
            yv, zv = divmod(r, nz)
            assert abs(xu - xv) + abs(yu - yv) + abs(zu - zv) == 1

    def test_validates(self):
        from repro.graph.generators import grid_3d

        with pytest.raises(InvalidInputError):
            grid_3d(0, 2, 2)


class TestBarabasiAlbert:
    def test_size_and_heavy_tail(self):
        from repro.graph.generators import barabasi_albert

        g = barabasi_albert(4000, 2, seed=0)
        assert g.n == 4000
        # Each of n - d new vertices adds d edges (a few merge/self-drop).
        assert g.m <= 2 * (4000 - 2)
        assert g.m >= int(0.95 * 2 * (4000 - 2))
        degs = np.array([g.degree(v) for v in range(g.n)])
        pos = degs[degs > 0]
        assert degs.max() >= 10 * np.median(pos)

    def test_connected_like_power_law(self):
        from repro.graph.generators import barabasi_albert
        from repro.graph.ops import largest_component

        g = barabasi_albert(500, 2, seed=1)
        sub, _ = largest_component(g)
        assert sub.n >= 0.99 * g.n

    def test_deterministic(self):
        from repro.graph.generators import barabasi_albert

        assert barabasi_albert(300, 3, seed=5) == barabasi_albert(300, 3, seed=5)

    def test_validates(self):
        from repro.graph.generators import barabasi_albert

        with pytest.raises(InvalidInputError):
            barabasi_albert(3, 3)
        with pytest.raises(InvalidInputError):
            barabasi_albert(10, 0)
