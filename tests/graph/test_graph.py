"""Unit tests for the CSR graph kernel."""

import numpy as np
import pytest

from repro import Graph
from repro.errors import InvalidInputError


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0, [])
        assert g.n == 0 and g.m == 0
        assert g.total_weight == 0.0

    def test_isolated_vertices(self):
        g = Graph(5, [])
        assert g.n == 5 and g.m == 0
        assert g.degree(3) == 0

    def test_basic_edges(self, path3):
        assert path3.n == 3
        assert path3.m == 2
        assert path3.total_weight == 5.0

    def test_canonical_orientation(self):
        g = Graph(3, [(2, 0, 1.0), (1, 0, 1.0)])
        assert (g.edges_u < g.edges_v).all()

    def test_parallel_edges_merge(self):
        g = Graph(2, [(0, 1, 1.0), (1, 0, 2.5)])
        assert g.m == 1
        assert g.edge_weight(0, 1) == pytest.approx(3.5)

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidInputError):
            Graph(2, [(0, 0, 1.0)])

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(InvalidInputError):
            Graph(2, [(0, 2, 1.0)])

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(InvalidInputError):
            Graph(2, [(0, 1, 0.0)])
        with pytest.raises(InvalidInputError):
            Graph(2, [(0, 1, -1.0)])

    def test_nan_weight_rejected(self):
        with pytest.raises(InvalidInputError):
            Graph(2, [(0, 1, float("nan"))])

    def test_negative_n_rejected(self):
        with pytest.raises(InvalidInputError):
            Graph(-1, [])

    def test_from_edge_arrays_matches_constructor(self):
        eu = np.array([0, 1, 2])
        ev = np.array([1, 2, 0])
        ew = np.array([1.0, 2.0, 3.0])
        a = Graph.from_edge_arrays(3, eu, ev, ew)
        b = Graph(3, list(zip(eu, ev, ew)))
        assert a == b


class TestQueries:
    def test_neighbors_sorted_by_construction(self, triangle):
        assert set(triangle.neighbors(0).tolist()) == {1, 2}

    def test_degree(self, k4):
        assert all(k4.degree(v) == 3 for v in range(4))

    def test_weighted_degrees(self, path3):
        assert np.allclose(path3.weighted_degrees, [2.0, 5.0, 3.0])

    def test_edge_weight_present_absent(self, path3):
        assert path3.edge_weight(0, 1) == 2.0
        assert path3.edge_weight(1, 0) == 2.0
        assert path3.edge_weight(0, 2) == 0.0

    def test_has_edge(self, path3):
        assert path3.has_edge(1, 2)
        assert not path3.has_edge(0, 2)

    def test_iter_edges_canonical(self, path3):
        edges = list(path3.iter_edges())
        assert edges == [(0, 1, 2.0), (1, 2, 3.0)]


class TestCuts:
    def test_cut_weight_mask(self, path3):
        mask = np.array([True, False, False])
        assert path3.cut_weight(mask) == 2.0

    def test_cut_weight_vertex_list(self, path3):
        assert path3.cut_weight([0, 1]) == 3.0

    def test_cut_weight_trivial_sides(self, k4):
        assert k4.cut_weight(np.zeros(4, dtype=bool)) == 0.0
        assert k4.cut_weight(np.ones(4, dtype=bool)) == 0.0

    def test_cut_complement_symmetry(self, grid44):
        rng = np.random.default_rng(0)
        mask = rng.random(16) < 0.5
        assert grid44.cut_weight(mask) == pytest.approx(grid44.cut_weight(~mask))

    def test_partition_cut_matches_pairwise_masks(self, grid44):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 3, size=16)
        total = grid44.partition_cut_weight(labels)
        # Sum of per-class boundary weights counts each cut edge twice.
        per_class = sum(grid44.cut_weight(labels == c) for c in range(3))
        assert total == pytest.approx(per_class / 2.0)

    def test_boundary_edges(self, path3):
        ids = path3.boundary_edges([0])
        assert ids.tolist() == [0]

    def test_volume_and_conductance(self, k4):
        assert k4.volume([0]) == 3.0
        # Isolating one K4 vertex: cut 3, min volume 3 -> conductance 1.
        assert k4.conductance([0]) == pytest.approx(1.0)

    def test_conductance_trivial_is_inf(self, k4):
        assert k4.conductance([]) == float("inf")

    def test_bad_mask_shape_rejected(self, path3):
        with pytest.raises(InvalidInputError):
            path3.cut_weight(np.zeros(5, dtype=bool))

    def test_bad_labels_shape_rejected(self, path3):
        with pytest.raises(InvalidInputError):
            path3.partition_cut_weight(np.zeros(4, dtype=np.int64))


class TestTransforms:
    def test_subgraph_basic(self, grid44):
        sub, back = grid44.subgraph([0, 1, 2, 3])
        assert sub.n == 4
        assert sub.m == 3  # top row is a path
        assert back.tolist() == [0, 1, 2, 3]

    def test_subgraph_relabels(self, path3):
        sub, back = path3.subgraph([2, 1])
        assert sub.n == 2
        assert sub.edge_weight(0, 1) == 3.0
        assert back.tolist() == [2, 1]

    def test_subgraph_duplicate_rejected(self, path3):
        with pytest.raises(InvalidInputError):
            path3.subgraph([0, 0])

    def test_contract_merges_and_sums(self, k4):
        labels = np.array([0, 0, 1, 1])
        q = k4.contract(labels)
        assert q.n == 2
        assert q.m == 1
        assert q.edge_weight(0, 1) == 4.0  # 4 crossing unit edges

    def test_contract_preserves_cut(self, grid44):
        rng = np.random.default_rng(2)
        labels = rng.integers(0, 4, size=16)
        q = grid44.contract(labels)
        # Quotient total weight == weight of edges crossing labels.
        assert q.total_weight == pytest.approx(
            grid44.partition_cut_weight(labels)
        )

    def test_connected_components(self):
        g = Graph(5, [(0, 1, 1.0), (2, 3, 1.0)])
        ncomp, labels = g.connected_components()
        assert ncomp == 3
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[4] not in (labels[0], labels[2])

    def test_is_connected(self, grid44):
        assert grid44.is_connected()
        assert not Graph(3, [(0, 1, 1.0)]).is_connected()
        assert Graph(1, []).is_connected()
        assert Graph(0, []).is_connected()


class TestInterop:
    def test_networkx_round_trip(self, grid44):
        nxg = grid44.to_networkx()
        back = Graph.from_networkx(nxg)
        assert back == grid44

    def test_from_networkx_default_weights(self):
        import networkx as nx

        nxg = nx.path_graph(3)
        g = Graph.from_networkx(nxg)
        assert g.total_weight == 2.0

    def test_from_networkx_bad_labels(self):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_edge("a", "b")
        with pytest.raises(InvalidInputError):
            Graph.from_networkx(nxg)

    def test_scipy_sparse_symmetric(self, grid44):
        a = grid44.to_scipy_sparse()
        assert (abs(a - a.T)).nnz == 0
        assert a.sum() == pytest.approx(2 * grid44.total_weight)
