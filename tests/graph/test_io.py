"""Round-trip and format tests for graph serialization."""

import numpy as np
import pytest

from repro import Graph
from repro.errors import InvalidInputError
from repro.graph.io import read_edgelist, read_metis, write_edgelist, write_metis


class TestEdgelist:
    def test_round_trip_exact(self, tmp_path, grid44):
        p = tmp_path / "g.edges"
        write_edgelist(p, grid44)
        back = read_edgelist(p)
        assert back == grid44

    def test_float_weights_exact(self, tmp_path):
        g = Graph(2, [(0, 1, 0.1234567890123)])
        p = tmp_path / "w.edges"
        write_edgelist(p, g)
        assert read_edgelist(p).edges_w[0] == g.edges_w[0]

    def test_empty_file_rejected(self, tmp_path):
        p = tmp_path / "empty.edges"
        p.write_text("")
        with pytest.raises(InvalidInputError):
            read_edgelist(p)

    def test_count_mismatch_rejected(self, tmp_path):
        p = tmp_path / "bad.edges"
        p.write_text("2 2\n0 1 1.0\n")
        with pytest.raises(InvalidInputError):
            read_edgelist(p)


class TestMetis:
    def test_round_trip_topology(self, tmp_path, grid44):
        p = tmp_path / "g.graph"
        write_metis(p, grid44, weight_scale=1.0)
        back, vw = read_metis(p)
        assert vw is None
        assert back.n == grid44.n
        assert back.m == grid44.m
        assert back == grid44  # unit weights survive scale 1

    def test_vertex_weights(self, tmp_path, path3):
        demands = np.array([0.5, 0.25, 1.0])
        p = tmp_path / "d.graph"
        write_metis(p, path3, demands=demands, weight_scale=100.0)
        back, vw = read_metis(p)
        assert vw is not None
        assert np.allclose(vw / 100.0, demands)

    def test_comment_lines_skipped(self, tmp_path):
        p = tmp_path / "c.graph"
        p.write_text("% a comment\n2 1 1\n2 3\n1 3\n")
        g, _ = read_metis(p)
        assert g.m == 1
        assert g.edge_weight(0, 1) == 3.0

    def test_header_vertex_mismatch(self, tmp_path):
        p = tmp_path / "bad.graph"
        p.write_text("3 1 1\n2 3\n1 3\n")
        with pytest.raises(InvalidInputError):
            read_metis(p)

    def test_header_edge_mismatch(self, tmp_path):
        p = tmp_path / "bad2.graph"
        p.write_text("2 5 1\n2 3\n1 3\n")
        with pytest.raises(InvalidInputError):
            read_metis(p)

    def test_bad_demands_shape(self, tmp_path, path3):
        with pytest.raises(InvalidInputError):
            write_metis(tmp_path / "x.graph", path3, demands=np.ones(5))

    def test_unweighted_format(self, tmp_path):
        p = tmp_path / "u.graph"
        p.write_text("3 2 0\n2\n1 3\n2\n")
        g, vw = read_metis(p)
        assert g.m == 2
        assert np.allclose(g.edges_w, 1.0)

    def test_vertex_weight_only_format(self, tmp_path):
        # fmt "10": vertex weights, unweighted edges.
        p = tmp_path / "vw.graph"
        p.write_text("3 2 10\n7 2\n3 1 3\n9 2\n")
        g, vw = read_metis(p)
        assert g.m == 2
        assert np.allclose(g.edges_w, 1.0)
        assert np.allclose(vw, [7.0, 3.0, 9.0])

    def test_multi_constraint_vertex_weights(self, tmp_path):
        # ncon = 2: two weight columns per vertex, all consumed.
        p = tmp_path / "mc.graph"
        p.write_text("3 2 11 2\n7 1 2 5\n3 2 1 5 3 5\n9 3 2 5\n")
        g, vw = read_metis(p)
        assert g.m == 2
        assert vw.shape == (3, 2)
        assert np.allclose(vw, [[7, 1], [3, 2], [9, 3]])
        assert g.edge_weight(0, 1) == 5.0
        assert g.edge_weight(1, 2) == 5.0

    def test_multi_constraint_round_trip(self, tmp_path, path3):
        demands = np.array([[0.5, 1.0], [0.25, 2.0], [1.0, 3.0]])
        p = tmp_path / "mc2.graph"
        write_metis(p, path3, demands=demands, weight_scale=100.0)
        header = p.read_text().splitlines()[0].split()
        assert header[2:] == ["11", "2"]
        back, vw = read_metis(p)
        assert back.n == path3.n and back.m == path3.m
        assert vw.shape == (3, 2)
        assert np.allclose(vw / 100.0, demands)

    def test_truncated_vertex_weight_line_rejected(self, tmp_path):
        p = tmp_path / "trunc.graph"
        p.write_text("2 1 11 3\n1 2\n1 1 1 1 2\n")
        with pytest.raises(InvalidInputError):
            read_metis(p)

    def test_missing_edge_weight_rejected(self, tmp_path):
        p = tmp_path / "odd.graph"
        p.write_text("2 1 1\n2 3\n1\n")
        with pytest.raises(InvalidInputError):
            read_metis(p)

    def test_neighbour_out_of_range_rejected(self, tmp_path):
        p = tmp_path / "oor.graph"
        p.write_text("2 1 1\n3 1\n1 1\n")
        with pytest.raises(InvalidInputError):
            read_metis(p)

    def test_isolated_vertex_round_trip(self, tmp_path):
        g = Graph(3, [(0, 1, 2.0)])  # vertex 2 has an empty line
        p = tmp_path / "iso.graph"
        write_metis(p, g, demands=np.array([0.5, 0.5, 0.5]), weight_scale=2.0)
        back, vw = read_metis(p)
        assert back.n == 3 and back.m == 1
        assert np.allclose(vw, 1.0)

    def test_large_round_trip(self, tmp_path):
        # ~10^5-edge instance through write→read, integer weights so the
        # trip is lossless at scale 1.
        from repro.graph.generators import grid_2d

        g = grid_2d(230, 230)  # 52 900 vertices, 105 340 edges
        rng = np.random.default_rng(0)
        g = Graph.from_edge_arrays(
            g.n,
            g.edges_u,
            g.edges_v,
            rng.integers(1, 100, size=g.m).astype(np.float64),
        )
        demands = rng.integers(1, 50, size=g.n).astype(np.float64)
        p = tmp_path / "big.graph"
        write_metis(p, g, demands=demands, weight_scale=1.0)
        back, vw = read_metis(p)
        assert back.n == g.n and back.m == g.m
        assert back == g
        assert np.array_equal(vw, demands)
