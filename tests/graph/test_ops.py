"""Tests for traversal, shortest paths, MST, union-find."""

import numpy as np
import pytest

from repro import Graph
from repro.errors import InvalidInputError
from repro.graph.ops import (
    UnionFind,
    all_pairs_dijkstra,
    bfs_order,
    dijkstra,
    largest_component,
    minimum_spanning_tree,
)


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(4)
        assert uf.n_sets == 4
        assert not uf.same(0, 1)

    def test_union_merges(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.same(0, 1)
        assert uf.n_sets == 3

    def test_union_idempotent(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.n_sets == 2

    def test_transitivity(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(3, 4)
        assert uf.same(0, 2)
        assert not uf.same(2, 3)


class TestBFS:
    def test_order_starts_at_source(self, grid44):
        order = bfs_order(grid44, 5)
        assert order[0] == 5
        assert sorted(order.tolist()) == list(range(16))

    def test_partial_component(self):
        g = Graph(4, [(0, 1, 1.0)])
        order = bfs_order(g, 0)
        assert sorted(order.tolist()) == [0, 1]

    def test_bad_source(self, grid44):
        with pytest.raises(InvalidInputError):
            bfs_order(grid44, 99)


class TestDijkstra:
    def test_unit_lengths_grid(self, grid44):
        # Explicit unit lengths: distance = hop count.
        dist = dijkstra(grid44, 0, lengths=np.ones(grid44.m))
        assert dist[0] == 0.0
        assert dist[3] == 3.0
        assert dist[15] == 6.0

    def test_default_inverse_weight_metric(self):
        g = Graph(3, [(0, 1, 2.0), (1, 2, 4.0)])
        dist = dijkstra(g, 0)
        assert dist[1] == pytest.approx(0.5)
        assert dist[2] == pytest.approx(0.75)

    def test_unreachable_inf(self):
        g = Graph(3, [(0, 1, 1.0)])
        dist = dijkstra(g, 0, lengths=np.ones(1))
        assert dist[2] == float("inf")

    def test_all_pairs_symmetric(self, grid44):
        dist = all_pairs_dijkstra(grid44, lengths=np.ones(grid44.m))
        assert np.allclose(dist, dist.T)
        assert np.allclose(np.diag(dist), 0.0)

    def test_triangle_inequality(self, grid44):
        dist = all_pairs_dijkstra(grid44, lengths=np.ones(grid44.m))
        n = grid44.n
        for i in range(0, n, 3):
            for j in range(0, n, 3):
                for k in range(0, n, 3):
                    assert dist[i, j] <= dist[i, k] + dist[k, j] + 1e-9

    def test_bad_lengths_shape(self, grid44):
        with pytest.raises(InvalidInputError):
            dijkstra(grid44, 0, lengths=np.ones(3))


class TestMST:
    def test_spanning_tree_size(self, grid44):
        edges = minimum_spanning_tree(grid44)
        assert edges.size == grid44.n - 1

    def test_min_tree_weight(self):
        # Square with one heavy diagonal-ish edge: MST avoids the heavy one.
        g = Graph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 10.0)])
        edges = minimum_spanning_tree(g)
        total = g.edges_w[edges].sum()
        assert total == pytest.approx(3.0)

    def test_max_tree_weight(self):
        g = Graph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 10.0)])
        edges = minimum_spanning_tree(g, maximize=True)
        total = g.edges_w[edges].sum()
        assert total == pytest.approx(12.0)

    def test_forest_on_disconnected(self):
        g = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        edges = minimum_spanning_tree(g)
        assert edges.size == 2


class TestLargestComponent:
    def test_connected_identity(self, grid44):
        sub, verts = largest_component(grid44)
        assert sub is grid44
        assert verts.size == 16

    def test_picks_biggest(self):
        g = Graph(6, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)])
        sub, verts = largest_component(g)
        assert sub.n == 3
        assert sorted(verts.tolist()) == [0, 1, 2]
