"""Tests for Laplacians, Fiedler vectors and sweep cuts."""

import numpy as np
import pytest

from repro import Graph
from repro.errors import InvalidInputError
from repro.graph.generators import planted_partition
from repro.graph.spectral import (
    fiedler_vector,
    laplacian,
    normalized_laplacian,
    spectral_bisection,
    sweep_cut,
)


class TestLaplacian:
    def test_row_sums_zero(self, grid44):
        lap = laplacian(grid44)
        assert np.allclose(np.asarray(lap.sum(axis=1)).ravel(), 0.0)

    def test_quadratic_form_is_cut_for_indicators(self, grid44):
        lap = laplacian(grid44)
        rng = np.random.default_rng(0)
        for _ in range(5):
            x = (rng.random(16) < 0.5).astype(float)
            # x^T L x = sum over edges w (x_u - x_v)^2 = cut weight.
            q = float(x @ (lap @ x))
            assert q == pytest.approx(grid44.cut_weight(x.astype(bool)))

    def test_normalized_psd_and_bounded(self, grid44):
        lap = normalized_laplacian(grid44).toarray()
        vals = np.linalg.eigvalsh(lap)
        assert vals.min() >= -1e-9
        assert vals.max() <= 2.0 + 1e-9

    def test_normalized_isolated_vertex(self):
        g = Graph(3, [(0, 1, 1.0)])
        lap = normalized_laplacian(g).toarray()
        assert lap[2, 2] == 0.0


class TestFiedler:
    def test_orthogonal_to_kernel(self, grid44):
        fv = fiedler_vector(grid44, seed=0)
        deg = grid44.weighted_degrees
        kernel = np.sqrt(deg)
        assert abs(kernel @ fv) < 1e-5 * np.linalg.norm(kernel)

    def test_matches_scipy_eigenvalue(self, grid44):
        from scipy.sparse.linalg import eigsh

        fv = fiedler_vector(grid44, seed=1)
        lap = normalized_laplacian(grid44)
        rayleigh = float(fv @ (lap @ fv)) / float(fv @ fv)
        vals = eigsh(lap, k=2, sigma=-1e-3, which="LM", return_eigenvectors=False)
        assert rayleigh == pytest.approx(float(max(vals)), abs=1e-4)

    def test_separates_planted_blocks(self):
        g = planted_partition(2, 12, 0.9, 0.02, seed=5)
        fv = fiedler_vector(g, seed=0)
        side = fv > np.median(fv)
        block = np.arange(24) // 12
        # Sign pattern should align with blocks (up to global flip).
        agree = (side == (block == 0)).mean()
        assert max(agree, 1 - agree) > 0.9

    def test_needs_two_vertices(self):
        with pytest.raises(InvalidInputError):
            fiedler_vector(Graph(1, []))


class TestSweepCut:
    def test_finds_planted_cut(self):
        g = planted_partition(2, 10, 1.0, 0.0, seed=0)
        # Two disconnected cliques: zero-conductance cut exists.
        fv = fiedler_vector(g, seed=0)
        mask, score = sweep_cut(g, fv)
        assert score == pytest.approx(0.0)
        assert mask.sum() == 10

    def test_cut_values_consistent(self, grid44):
        rng = np.random.default_rng(3)
        emb = rng.random(16)
        mask, score = sweep_cut(grid44, emb)
        cut = grid44.cut_weight(mask)
        vol = min(grid44.volume(mask), grid44.volume(~mask))
        assert score == pytest.approx(cut / vol)

    def test_balance_constraint_respected(self, grid44):
        emb = np.arange(16, dtype=float)
        mask, _ = sweep_cut(grid44, emb, balance_fraction=0.4)
        assert 6 <= mask.sum() <= 10  # 40% of 16 = 6.4

    def test_weights_in_balance(self, grid44):
        w = np.zeros(16)
        w[0] = 100.0  # all mass on one vertex
        # With mass balance at 0.4, no valid prefix exists; the fallback
        # picks the most balanced split without crashing.
        mask, _ = sweep_cut(grid44, np.arange(16.0), balance_fraction=0.4, weights=w)
        assert 0 < mask.sum() < 16

    def test_bad_embedding_shape(self, grid44):
        with pytest.raises(InvalidInputError):
            sweep_cut(grid44, np.ones(5))


class TestSpectralBisection:
    def test_balanced_and_nontrivial(self, grid44):
        mask = spectral_bisection(grid44, seed=0)
        assert 4 <= mask.sum() <= 12

    def test_edgeless_graph(self):
        g = Graph(4, [])
        mask = spectral_bisection(g, seed=0)
        assert mask.sum() == 2

    def test_recovers_two_blocks(self, two_blocks):
        mask = spectral_bisection(two_blocks, seed=0)
        assert two_blocks.cut_weight(mask) == pytest.approx(0.5)
