"""Tests for decomposition-tree binarization."""

import math

import numpy as np
import pytest

from repro import Graph
from repro.decomposition.tree import TreeAssembler
from repro.errors import InvalidInputError
from repro.decomposition.spectral_tree import spectral_decomposition_tree
from repro.decomposition.contraction import contraction_decomposition_tree
from repro.hgpt.binarize import INF_WEIGHT, binarize


def star_tree(g):
    """A root with every vertex as a direct child (max fan-out)."""
    asm = TreeAssembler(g)
    leaves = [asm.add_leaf(v) for v in range(g.n)]
    return asm.finish(asm.add_internal(leaves))


class TestBinarize:
    def test_binary_everywhere(self, grid44):
        tree = star_tree(grid44)
        bt = binarize(tree, np.ones(grid44.n, dtype=np.int64))
        bt.validate()
        for v in range(bt.n_nodes):
            leaf = bt.left[v] < 0
            assert leaf == (bt.right[v] < 0)

    def test_leaf_count_preserved(self, grid44):
        tree = spectral_decomposition_tree(grid44, seed=0)
        bt = binarize(tree, np.full(grid44.n, 2, dtype=np.int64))
        leaves = [v for v in range(bt.n_nodes) if bt.is_leaf(v)]
        assert sorted(int(bt.vertex[v]) for v in leaves) == list(range(grid44.n))

    def test_demands_attached(self, grid44):
        tree = spectral_decomposition_tree(grid44, seed=0)
        q = np.arange(1, grid44.n + 1, dtype=np.int64)
        bt = binarize(tree, q)
        for v in range(bt.n_nodes):
            if bt.is_leaf(v):
                assert bt.demand[v] == q[bt.vertex[v]]

    def test_dummy_edges_infinite_real_edges_kept(self, grid44):
        tree = star_tree(grid44)
        bt = binarize(tree, np.ones(grid44.n, dtype=np.int64))
        # Leaves keep their original (finite) cut weights; the added dummy
        # internal nodes carry INF except the gadget root (tree root, 0).
        n_inf = 0
        for v in range(bt.n_nodes):
            if bt.is_leaf(v):
                assert math.isfinite(bt.up_weight[v])
            elif v != bt.root:
                assert bt.up_weight[v] == INF_WEIGHT
                n_inf += 1
        assert n_inf == grid44.n - 2  # f-1 dummies, one is the root

    def test_leaf_weights_match_tree(self, grid44):
        tree = spectral_decomposition_tree(grid44, seed=1)
        bt = binarize(tree, np.ones(grid44.n, dtype=np.int64))
        # Each binary leaf's up-weight equals the decomposition tree's
        # leaf edge weight (the boundary of the singleton).
        for v in range(bt.n_nodes):
            if bt.is_leaf(v) and v != bt.root:
                vert = int(bt.vertex[v])
                t_leaf = int(tree.leaf_node_of_vertex[vert])
                assert bt.up_weight[v] == pytest.approx(
                    float(tree.edge_weight[t_leaf])
                )

    def test_root_weight_zero(self, grid44):
        tree = spectral_decomposition_tree(grid44, seed=0)
        bt = binarize(tree, np.ones(grid44.n, dtype=np.int64))
        assert bt.up_weight[bt.root] == 0.0

    def test_postorder_children_first(self, grid44):
        tree = contraction_decomposition_tree(grid44, seed=0)
        bt = binarize(tree, np.ones(grid44.n, dtype=np.int64))
        pos = {v: i for i, v in enumerate(bt.postorder().tolist())}
        for v in range(bt.n_nodes):
            if not bt.is_leaf(v):
                assert pos[int(bt.left[v])] < pos[v]
                assert pos[int(bt.right[v])] < pos[v]

    def test_zero_demand_rejected(self, grid44):
        tree = spectral_decomposition_tree(grid44, seed=0)
        q = np.ones(grid44.n, dtype=np.int64)
        q[3] = 0
        with pytest.raises(InvalidInputError):
            binarize(tree, q)

    def test_shape_mismatch_rejected(self, grid44):
        tree = spectral_decomposition_tree(grid44, seed=0)
        with pytest.raises(InvalidInputError):
            binarize(tree, np.ones(3, dtype=np.int64))

    def test_single_vertex(self):
        g = Graph(1, [])
        tree = star_tree(g)
        bt = binarize(tree, np.array([4], dtype=np.int64))
        # Unary root collapses onto the single leaf.
        assert bt.is_leaf(bt.root)
        assert bt.demand[bt.root] == 4
