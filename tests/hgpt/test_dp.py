"""Tests for the RHGPT signature DP, including a brute-force oracle.

The oracle enumerates every *edge cut-level assignment* — each tree edge
``e`` gets a deepest-kept level ``j_e`` and is cut at levels ``k > j_e``
(this is exactly the shape of nice solutions, by Corollary 1) — derives
the induced leaf components per level, checks capacities, and charges
``w(e) · (cm(k−1) − cm(k))`` for every cut level whose child-side
component is non-empty.  The minimum over all assignments must equal the
DP's optimum on small trees.
"""


import numpy as np
import pytest

from repro.errors import SolverError
from repro.graph.generators import grid_2d
from repro.decomposition.spectral_tree import spectral_decomposition_tree
from repro.decomposition.contraction import contraction_decomposition_tree
from repro.hgpt.binarize import binarize
from repro.hgpt.dp import DPStats, solve_rhgpt
from repro.bench.oracles import brute_force_optimum, path_binary_tree

simple_btree = path_binary_tree


class TestHandCases:
    def test_two_leaves_fit_together(self):
        bt = simple_btree([5.0], [1, 1])
        sol = solve_rhgpt(bt, caps=[2], deltas=[0.0, 1.0])
        assert sol.cost == 0.0
        assert len(sol.levels[0]) == 1

    def test_two_leaves_must_split(self):
        bt = simple_btree([5.0], [2, 2])
        sol = solve_rhgpt(bt, caps=[3], deltas=[0.0, 1.0])
        # One of the two leaf edges must be cut; both carry the path-cut
        # weight 5 (w_T of a singleton = its boundary).
        assert sol.cost == pytest.approx(5.0)
        assert len(sol.levels[0]) == 2

    def test_three_leaves_pick_cheapest_split(self):
        # Path weights 1 and 9: separating {0} is cheap, {2} expensive.
        bt = simple_btree([1.0, 9.0], [2, 2, 2])
        sol = solve_rhgpt(bt, caps=[4], deltas=[0.0, 1.0])
        # Must split into {0} + {1,2} (boundary of {0} is 1).
        assert sol.cost == pytest.approx(1.0)
        sizes = sorted(s.size for s in sol.levels[0])
        assert sizes == [1, 2]

    def test_h2_two_level_costs(self):
        # Two leaves, h=2, caps force level-2 split but allow level-1 union.
        bt = simple_btree([4.0], [2, 2])
        sol = solve_rhgpt(bt, caps=[4, 2], deltas=[0.0, 7.0, 3.0])
        # Split only at level 2: pay w * delta(2) = 4 * 3.
        assert sol.cost == pytest.approx(12.0)
        assert len(sol.levels[0]) == 1
        assert len(sol.levels[1]) == 2

    def test_h2_forced_full_split(self):
        bt = simple_btree([4.0], [2, 2])
        sol = solve_rhgpt(bt, caps=[2, 2], deltas=[0.0, 7.0, 3.0])
        # Both levels split: pay 4 * (7 + 3).
        assert sol.cost == pytest.approx(40.0)

    def test_infeasible_leaf_raises(self):
        bt = simple_btree([1.0], [5, 1])
        with pytest.raises(SolverError):
            solve_rhgpt(bt, caps=[4], deltas=[0.0, 1.0])


class TestOracle:
    """DP == exhaustive enumeration on random small trees."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_h1_random(self, seed):
        rng = np.random.default_rng(seed)
        n = 5
        weights = rng.uniform(0.5, 3.0, size=n - 1).round(2)
        demands = rng.integers(1, 4, size=n)
        bt = simple_btree(list(weights), list(demands))
        caps = [int(demands.sum()) // 2 + 2]
        deltas = [0.0, 1.0]
        sol = solve_rhgpt(bt, caps, deltas)
        assert sol.cost == pytest.approx(brute_force_optimum(bt, caps, deltas))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_h2_random(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = 4
        weights = rng.uniform(0.5, 3.0, size=n - 1).round(2)
        demands = rng.integers(1, 3, size=n)
        bt = simple_btree(list(weights), list(demands))
        total = int(demands.sum())
        caps = [total, max(2, total // 2)]
        deltas = [0.0, float(rng.uniform(1, 5)), float(rng.uniform(0.1, 1))]
        sol = solve_rhgpt(bt, caps, deltas)
        assert sol.cost == pytest.approx(brute_force_optimum(bt, caps, deltas))

    @pytest.mark.parametrize("seed", [0, 1])
    def test_h2_on_real_decomposition_tree(self, seed):
        g = grid_2d(2, 3, weight_range=(0.5, 2.0), seed=seed)
        tree = spectral_decomposition_tree(g, seed=seed)
        q = np.ones(g.n, dtype=np.int64)
        bt = binarize(tree, q)
        caps = [6, 3]
        deltas = [0.0, 2.0, 1.0]
        sol = solve_rhgpt(bt, caps, deltas)
        assert sol.cost == pytest.approx(brute_force_optimum(bt, caps, deltas))


class TestSolutionStructure:
    def test_validates_as_rhgpt_solution(self):
        g = grid_2d(3, 4, weight_range=(0.5, 2.0), seed=5)
        tree = contraction_decomposition_tree(g, seed=5)
        q = np.full(g.n, 2, dtype=np.int64)
        bt = binarize(tree, q)
        caps = [16, 6]
        sol = solve_rhgpt(bt, caps, [0.0, 2.0, 1.0])
        sol.validate(g.n, caps, q)

    def test_beam_is_sound(self):
        g = grid_2d(3, 4, weight_range=(0.5, 2.0), seed=6)
        tree = spectral_decomposition_tree(g, seed=6)
        q = np.full(g.n, 2, dtype=np.int64)
        bt = binarize(tree, q)
        caps = [16, 6]
        exact = solve_rhgpt(bt, caps, [0.0, 2.0, 1.0])
        beamed = solve_rhgpt(bt, caps, [0.0, 2.0, 1.0], beam_width=3)
        beamed.validate(g.n, caps, q)
        assert beamed.cost >= exact.cost - 1e-9

    def test_stats_populated(self):
        bt = simple_btree([1.0, 2.0, 3.0], [1, 1, 1, 1])
        stats = DPStats()
        solve_rhgpt(bt, caps=[4], deltas=[0.0, 1.0], stats=stats)
        assert stats.nodes == bt.n_nodes
        assert stats.states_max >= 1

    def test_monotone_capacity_requirement(self):
        bt = simple_btree([1.0], [1, 1])
        with pytest.raises(SolverError):
            solve_rhgpt(bt, caps=[1, 2], deltas=[0.0, 1.0, 1.0])

    def test_delta_validation(self):
        bt = simple_btree([1.0], [1, 1])
        with pytest.raises(SolverError):
            solve_rhgpt(bt, caps=[2], deltas=[0.0])
        with pytest.raises(SolverError):
            solve_rhgpt(bt, caps=[2], deltas=[0.0, -1.0])
