"""Direct tests of the vectorised DP internals (dedupe, dominance, project).

The numpy fast paths (radix keys, Pareto staircase) replaced a simple
dict implementation after profiling; these tests pin their semantics
against naive reference implementations so future optimisation passes
cannot silently change behaviour.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hgpt.dp import _dedupe_min, _dominance_prune, _encode_rows, _project, _Table


def naive_dedupe(sigs, costs):
    best = {}
    for i in range(len(costs)):
        key = tuple(sigs[i])
        if key not in best or costs[i] < costs[best[key]]:
            best[key] = i
    return best


def naive_prune(sigs, costs):
    """Reference dominance filter: O(m^2), cost-order scan."""
    order = sorted(
        range(len(costs)), key=lambda i: (costs[i], tuple(sigs[i]))
    )
    kept = []
    for i in order:
        if any(all(sigs[j][c] <= sigs[i][c] for c in range(sigs.shape[1])) for j in kept):
            continue
        kept.append(i)
    return set(kept)


@st.composite
def state_tables(draw, h):
    m = draw(st.integers(min_value=1, max_value=40))
    sigs = np.asarray(
        draw(
            st.lists(
                st.lists(st.integers(min_value=0, max_value=6), min_size=h, max_size=h),
                min_size=m,
                max_size=m,
            )
        ),
        dtype=np.int64,
    )
    costs = np.asarray(
        draw(
            st.lists(
                st.floats(min_value=0, max_value=20, allow_nan=False),
                min_size=m,
                max_size=m,
            )
        )
    )
    return sigs, costs


class TestEncodeRows:
    def test_distinct_rows_distinct_keys(self):
        sigs = np.array([[1, 2], [2, 1], [1, 2], [0, 0]], dtype=np.int64)
        keys = _encode_rows(sigs)
        assert keys[0] == keys[2]
        assert len({int(keys[0]), int(keys[1]), int(keys[3])}) == 3

    def test_overflow_returns_none(self):
        sigs = np.array([[2**40, 2**40]], dtype=np.int64)
        assert _encode_rows(sigs) is None

    def test_empty(self):
        assert _encode_rows(np.empty((0, 2), dtype=np.int64)).size == 0


class TestDedupeMin:
    @given(state_tables(h=2))
    @settings(max_examples=60, deadline=None)
    def test_matches_naive(self, table):
        sigs, costs = table
        uniq, min_costs, winners = _dedupe_min(sigs, costs)
        ref = naive_dedupe(sigs, costs)
        assert uniq.shape[0] == len(ref)
        for row, cost in zip(uniq, min_costs):
            assert cost == pytest.approx(costs[ref[tuple(row)]])

    def test_winners_index_source_rows(self):
        sigs = np.array([[1, 1], [1, 1], [2, 2]], dtype=np.int64)
        costs = np.array([5.0, 3.0, 1.0])
        uniq, min_costs, winners = _dedupe_min(sigs, costs)
        for w, row, cost in zip(winners, uniq, min_costs):
            assert np.array_equal(sigs[w], row)
            assert costs[w] == cost


class TestDominancePrune:
    @given(state_tables(h=1))
    @settings(max_examples=60, deadline=None)
    def test_h1_matches_naive(self, table):
        sigs, costs = table
        uniq, ucosts, _ = _dedupe_min(sigs, costs)
        kept = set(_dominance_prune(uniq, ucosts, None).tolist())
        assert kept == naive_prune(uniq, ucosts)

    @given(state_tables(h=2))
    @settings(max_examples=60, deadline=None)
    def test_h2_staircase_matches_naive(self, table):
        sigs, costs = table
        uniq, ucosts, _ = _dedupe_min(sigs, costs)
        kept = set(_dominance_prune(uniq, ucosts, None).tolist())
        assert kept == naive_prune(uniq, ucosts)

    @given(state_tables(h=3))
    @settings(max_examples=40, deadline=None)
    def test_h3_generic_matches_naive(self, table):
        sigs, costs = table
        uniq, ucosts, _ = _dedupe_min(sigs, costs)
        kept = set(_dominance_prune(uniq, ucosts, None).tolist())
        assert kept == naive_prune(uniq, ucosts)

    def test_pareto_pair_both_kept(self):
        """Cheaper-but-larger and costlier-but-smaller must both survive."""
        sigs = np.array([[3, 3], [1, 1]], dtype=np.int64)
        costs = np.array([1.0, 2.0])
        kept = _dominance_prune(sigs, costs, None)
        assert len(kept) == 2

    def test_beam_keeps_most_closed(self):
        sigs = np.array([[5, 5], [4, 4], [3, 3], [0, 0]], dtype=np.int64)
        costs = np.array([0.0, 1.0, 2.0, 50.0])
        kept = _dominance_prune(sigs, costs, beam_width=2)
        kept_sigs = {tuple(sigs[i]) for i in kept.tolist()}
        assert (0, 0) in kept_sigs  # flexibility guard

    def test_beam_width_respected_plus_guard(self):
        sigs = np.array([[5, 1], [4, 2], [3, 3], [2, 4], [1, 5]], dtype=np.int64)
        costs = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        kept = _dominance_prune(sigs, costs, beam_width=2)
        assert 2 <= len(kept) <= 3


class TestProject:
    def _table(self, sigs, costs):
        m = len(costs)
        neg = np.full(m, -1, dtype=np.int64)
        return _Table(
            np.asarray(sigs, dtype=np.int64),
            np.asarray(costs, dtype=np.float64),
            neg.copy(), neg.copy(), neg.copy(), neg.copy(),
        )

    def test_finite_edge_payments(self):
        # One state (3, 2), weight 2, deltas (., 5, 1).
        t = self._table([[3, 2]], [1.0])
        psig, pcost, porig, pj = _project(t, 2.0, np.array([0.0, 5.0, 1.0]), 2)
        got = {tuple(s): (c, j) for s, c, j in zip(psig, pcost, pj)}
        # j=2: keep all, no payment.
        assert got[(3, 2)] == (1.0, 2)
        # j=1: close level 2 (D=2>0): pay 2*1.
        assert got[(3, 0)] == (3.0, 1)
        # j=0: additionally close level 1 (D=3>0): pay 2*5 more.
        assert got[(0, 0)] == (13.0, 0)

    def test_infinite_edge_only_free_cuts(self):
        t = self._table([[3, 2], [3, 0]], [1.0, 4.0])
        psig, pcost, porig, pj = _project(
            t, float("inf"), np.array([0.0, 5.0, 1.0]), 2
        )
        got = {tuple(s): c for s, c in zip(psig, pcost)}
        # State (3,2) admits only j=2 (any cut would pay on an inf edge).
        assert got[(3, 2)] == 1.0
        # State (3,0) admits j=2 and j=1 (level-2 close is free: D=0).
        assert got[(3, 0)] == 4.0
        assert (0, 0) not in got  # j=0 would pay for level 1

    def test_zero_demand_level_projection_dedupes(self):
        t = self._table([[2, 0]], [0.0])
        psig, pcost, porig, pj = _project(t, 1.0, np.array([0.0, 1.0, 1.0]), 2)
        # (2,0) at j=2 and j=1 coincide; dedupe keeps one.
        keys = [tuple(s) for s in psig]
        assert len(keys) == len(set(keys))
