"""Equivalence and admissibility tests for the bounded/tiled DP kernel.

The kernel's contract is that every :class:`DPConfig` knob combination —
tiling (including tiny tiles that force mid-merge compaction), incumbent
bound pruning, and subtree parallelism — returns solution costs
identical to the exhaustive legacy merge.  These tests pin that contract
with hypothesis-generated random trees plus the lower-bound invariant
backing the pruning (``sub_lb(v)`` never exceeds the true cost of any
state at ``v``).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidInputError
from repro.graph.generators import grid_2d
from repro.decomposition.spectral_tree import spectral_decomposition_tree
from repro.hgpt.binarize import binarize
from repro.hgpt.dp import (
    DPConfig,
    DPStats,
    _solve_tables,
    compute_lower_bounds,
    solve_rhgpt,
)
from repro.bench.oracles import brute_force_optimum, path_binary_tree

#: The pre-kernel reference semantics: untiled, unbounded, serial.
LEGACY = DPConfig(tile_size=0, bound_pruning=False, parallel_subtrees=False)

#: Knob combinations that must all match LEGACY's costs exactly.
VARIANTS = [
    DPConfig(),  # the shipped default (tiled + bound pruning)
    DPConfig(bound_pruning=False),  # tiling alone
    DPConfig(tile_size=0, bound_pruning=True),  # bounding alone
    DPConfig(tile_size=7, bound_pruning=False),  # tiny tiles force compaction
    DPConfig(tile_size=7, bound_pruning=True),
    DPConfig(tile_size=5, bound_pruning=True, incumbent_beam=1),
]


@st.composite
def random_instance(draw):
    """A random path binary tree + feasible caps/deltas with h in 1..3."""
    n = draw(st.integers(min_value=3, max_value=6))
    weights = [
        draw(st.floats(min_value=0.25, max_value=4.0, allow_nan=False))
        for _ in range(n - 1)
    ]
    demands = [draw(st.integers(min_value=1, max_value=3)) for _ in range(n)]
    h = draw(st.integers(min_value=1, max_value=3))
    total = sum(demands)
    caps = []
    lo = max(demands)
    hi = total
    for _ in range(h):
        c = draw(st.integers(min_value=lo, max_value=max(lo, hi)))
        caps.append(min(c, hi))
        hi = caps[-1]
    deltas = [0.0] + [
        draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
        for _ in range(h)
    ]
    return weights, demands, caps, deltas


class TestKernelEquivalence:
    @given(random_instance())
    @settings(max_examples=60, deadline=None)
    def test_all_knob_combos_match_legacy_exact(self, instance):
        weights, demands, caps, deltas = instance
        bt = path_binary_tree(weights, demands)
        reference = solve_rhgpt(bt, caps, deltas, dp_config=LEGACY)
        reference.validate(len(demands), caps, np.asarray(demands))
        for cfg in VARIANTS:
            sol = solve_rhgpt(bt, caps, deltas, dp_config=cfg)
            assert sol.cost == reference.cost, cfg
            sol.validate(len(demands), caps, np.asarray(demands))

    @given(random_instance(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_beamed_runs_identical_across_configs(self, instance, beam):
        """Under a beam the kernel must keep the *same states* as the
        legacy merge (bound pruning is disabled, tiling is exact), so
        beamed costs are bit-identical, not merely equal-optimal."""
        weights, demands, caps, deltas = instance
        bt = path_binary_tree(weights, demands)

        def run(cfg):
            try:
                return solve_rhgpt(
                    bt, caps, deltas, beam_width=beam, dp_config=cfg
                ).cost
            except Exception:
                return None  # beam killed feasibility: must do so everywhere

        reference = run(LEGACY)
        for cfg in VARIANTS:
            assert run(cfg) == reference, cfg

    @given(random_instance())
    @settings(max_examples=25, deadline=None)
    def test_default_kernel_matches_bruteforce(self, instance):
        weights, demands, caps, deltas = instance
        bt = path_binary_tree(weights, demands)
        sol = solve_rhgpt(bt, caps, deltas)  # shipped default config
        assert sol.cost == pytest.approx(brute_force_optimum(bt, caps, deltas))

    def test_parallel_subtrees_match_serial(self):
        g = grid_2d(4, 5, weight_range=(0.5, 2.0), seed=3)
        tree = spectral_decomposition_tree(g, seed=3)
        q = np.full(g.n, 2, dtype=np.int64)
        bt = binarize(tree, q)
        caps = [2 * g.n, 8]
        deltas = [0.0, 2.0, 1.0]
        serial = solve_rhgpt(bt, caps, deltas, dp_config=LEGACY)
        par_cfg = DPConfig(
            parallel_subtrees=True,
            parallel_workers=2,
            parallel_threshold=8,
            parallel_min_nodes=4,
        )
        stats = DPStats()
        parallel = solve_rhgpt(bt, caps, deltas, stats=stats, dp_config=par_cfg)
        assert parallel.cost == serial.cost
        # Worker counters travel back and fold into the caller's stats.
        assert stats.nodes == bt.n_nodes
        assert stats.states_total > 0


class TestLowerBoundAdmissibility:
    @given(random_instance())
    @settings(max_examples=40, deadline=None)
    def test_sub_lb_below_every_exact_state(self, instance):
        """``sub_lb[v]`` must lower-bound the cost of *every* state the
        exhaustive DP produces at ``v`` — the invariant that makes
        incumbent pruning safe (white-box: inspects the DP tables)."""
        weights, demands, caps, deltas = instance
        bt = path_binary_tree(weights, demands)
        caps_arr = np.asarray(caps, dtype=np.int64)
        deltas_arr = np.asarray(deltas, dtype=np.float64)
        tables = [None] * bt.n_nodes
        _solve_tables(
            bt, caps_arr, deltas_arr, None, LEGACY, DPStats(),
            bt.postorder(), tables,
        )
        sub_lb, outside_lb = compute_lower_bounds(bt, caps, deltas)
        opt = float(tables[bt.root].costs.min())
        assert outside_lb[bt.root] == 0.0
        for v in bt.postorder():
            min_cost = float(tables[v].costs.min())
            assert sub_lb[v] <= min_cost + 1e-9
            # Any completion of v's best state still pays outside_lb[v]
            # outside SUB(v), so the pair can never undercut the optimum.
            assert min_cost + outside_lb[v] <= opt + 1e-9

    @given(random_instance())
    @settings(max_examples=25, deadline=None)
    def test_sub_lb_below_bruteforce_optimum(self, instance):
        weights, demands, caps, deltas = instance
        bt = path_binary_tree(weights, demands)
        sub_lb, _outside = compute_lower_bounds(bt, caps, deltas)
        assert sub_lb[bt.root] <= brute_force_optimum(bt, caps, deltas) + 1e-9


class TestDPConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(InvalidInputError):
            DPConfig(tile_size=-1)
        with pytest.raises(InvalidInputError):
            DPConfig(parallel_workers=-1)
        with pytest.raises(InvalidInputError):
            DPConfig(parallel_threshold=-2)
        with pytest.raises(InvalidInputError):
            DPConfig(parallel_min_nodes=0)
        with pytest.raises(InvalidInputError):
            DPConfig(incumbent_beam=0)

    def test_kernel_counters_populated(self):
        bt = path_binary_tree([1.0, 2.0, 3.0], [1, 1, 1, 1])
        stats = DPStats()
        solve_rhgpt(bt, caps=[4], deltas=[0.0, 1.0], stats=stats)
        assert stats.tiles >= bt.n_nodes // 2  # one per internal merge
        assert stats.table_peak_bytes > 0
        assert stats.bound_pruned >= 0
        assert math.isfinite(stats.table_peak_bytes)
        d = stats.as_dict()
        assert {"tiles", "bound_pruned", "table_peak_bytes"} <= set(d)
