"""Tests for demand grids (the Hochbaum–Shmoys rounding)."""

import numpy as np
import pytest

from repro.errors import InfeasibleError, InvalidInputError
from repro.hgpt.quantize import DemandGrid


class TestEpsilonGrid:
    def test_unit_definition(self, hier_2x4):
        grid = DemandGrid.from_epsilon(hier_2x4, n=10, epsilon=0.5)
        assert grid.unit == pytest.approx(0.5 * 1.0 / 10)
        assert grid.epsilon == 0.5

    def test_caps_monotone(self, hier_deep):
        grid = DemandGrid.from_epsilon(hier_deep, n=8, epsilon=0.3)
        caps = list(grid.caps)
        assert caps == sorted(caps, reverse=True)

    def test_caps_embed_slack(self, hier_2x4):
        grid = DemandGrid.from_epsilon(hier_2x4, n=4, epsilon=1.0)
        # unit = 1/4; C'(h) = floor(2.0 / 0.25) = 8.
        assert grid.caps[2] == 8

    def test_rounding_epsilon_matches(self, hier_2x4):
        grid = DemandGrid.from_epsilon(hier_2x4, n=12, epsilon=0.4)
        assert grid.rounding_epsilon(12) == pytest.approx(0.4)

    def test_bad_params(self, hier_2x4):
        with pytest.raises(InvalidInputError):
            DemandGrid.from_epsilon(hier_2x4, n=0, epsilon=0.5)
        with pytest.raises(InvalidInputError):
            DemandGrid.from_epsilon(hier_2x4, n=4, epsilon=0.0)


class TestBudgetGrid:
    def test_total_near_budget(self, hier_2x4):
        d = np.full(16, 0.3)
        grid = DemandGrid.from_budget(hier_2x4, d, budget=64)
        q = grid.quantize(d)
        assert 64 <= q.sum() <= 64 + 16  # ceil rounding adds < 1 per vertex

    def test_slack_decoupled(self, hier_2x4):
        d = np.full(16, 0.3)
        grid = DemandGrid.from_budget(hier_2x4, d, budget=64, slack=0.1)
        assert grid.epsilon == 0.1

    def test_budget_below_n_rejected(self, hier_2x4):
        with pytest.raises(InvalidInputError):
            DemandGrid.from_budget(hier_2x4, np.full(16, 0.3), budget=8)

    def test_bad_demands(self, hier_2x4):
        with pytest.raises(InvalidInputError):
            DemandGrid.from_budget(hier_2x4, np.array([0.5, -0.1]), budget=4)


class TestQuantize:
    def test_positive_cells(self, hier_2x4):
        grid = DemandGrid.from_epsilon(hier_2x4, n=5, epsilon=0.5)
        q = grid.quantize(np.array([1e-9, 0.5, 1.0, 0.2, 0.7]))
        assert (q >= 1).all()

    def test_ceil_rounding(self, hier_2x4):
        grid = DemandGrid.from_epsilon(hier_2x4, n=4, epsilon=1.0)  # unit 0.25
        q = grid.quantize(np.array([0.25, 0.26, 0.74, 1.0]))
        assert q.tolist() == [1, 2, 3, 4]

    def test_feasible_real_stays_grid_feasible(self, hier_2x4):
        """Lower-bound direction: a full feasible leaf still fits its cap."""
        for n, eps in [(8, 0.5), (16, 0.25), (12, 1.0)]:
            grid = DemandGrid.from_epsilon(hier_2x4, n=n, epsilon=eps)
            rng = np.random.default_rng(n)
            # n vertices summing exactly to leaf capacity 1.
            d = rng.random(n)
            d = d / d.sum()
            q = grid.quantize(d)
            assert q.sum() <= grid.caps[hier_2x4.h], (n, eps)

    def test_grid_feasible_bounds_real_load(self, hier_2x4):
        """Upper-bound direction: C'(j) cells dequantize to <= (1+eps) CP(j)."""
        grid = DemandGrid.from_epsilon(hier_2x4, n=10, epsilon=0.3)
        for j in range(hier_2x4.h + 1):
            assert grid.dequantize_load(grid.caps[j]) <= (1.3) * hier_2x4.capacity(
                j
            ) + 1e-9

    def test_oversized_vertex_rejected(self, hier_2x4):
        grid = DemandGrid.from_epsilon(hier_2x4, n=4, epsilon=0.1)
        with pytest.raises(InfeasibleError):
            grid.quantize(np.array([0.5, 0.5, 0.5, 1.5]))

    def test_total_overflow_rejected(self, hier_2x4):
        grid = DemandGrid.from_epsilon(hier_2x4, n=10, epsilon=0.1)
        with pytest.raises(InfeasibleError):
            grid.quantize(np.full(10, 1.0))  # total 10 > 8 (+slack)

    def test_violation_bound(self, hier_2x4):
        grid = DemandGrid.from_epsilon(hier_2x4, n=4, epsilon=0.2)
        assert grid.violation_bound(1) == pytest.approx(1.2)

    def test_total_cells(self, hier_2x4):
        grid = DemandGrid.from_epsilon(hier_2x4, n=4, epsilon=1.0)
        assert grid.total_cells == grid.caps[0]
