"""Tests for the Theorem-5 repair (relaxed solution → hierarchy placement)."""

import numpy as np
import pytest

from repro import Graph, Hierarchy
from repro.errors import SolverError
from repro.graph.generators import power_law, random_demands
from repro.decomposition.spectral_tree import spectral_decomposition_tree
from repro.hgpt.binarize import binarize
from repro.hgpt.dp import solve_rhgpt
from repro.hgpt.quantize import DemandGrid
from repro.hgpt.repair import repair_to_placement
from repro.hgpt.solution import LevelSet, TreeSolution


def _solve_instance(g, hier, d, seed=0, epsilon=0.5):
    grid = DemandGrid.from_epsilon(hier, g.n, epsilon)
    q = grid.quantize(d)
    tree = spectral_decomposition_tree(g, seed=seed)
    bt = binarize(tree, q)
    caps = [grid.caps[j] for j in range(1, hier.h + 1)]
    norm, _ = hier.normalized()
    deltas = [0.0] + [norm.cm[k - 1] - norm.cm[k] for k in range(1, hier.h + 1)]
    sol = solve_rhgpt(bt, caps, deltas)
    return sol, grid


class TestRepair:
    def test_every_vertex_placed(self, clustered_instance):
        g, hier, d = clustered_instance
        sol, grid = _solve_instance(g, hier, d)
        placement, report = repair_to_placement(g, hier, d, sol, grid)
        assert (placement.leaf_of >= 0).all()
        assert placement.leaf_of.size == g.n

    def test_theorem1_violation_bound(self, clustered_instance):
        g, hier, d = clustered_instance
        sol, grid = _solve_instance(g, hier, d)
        placement, report = repair_to_placement(g, hier, d, sol, grid)
        for j in range(1, hier.h + 1):
            bound = (1 + j) * (1 + grid.epsilon)
            assert placement.level_violation(j) <= bound * (1 + 1e-9)
        assert placement.max_violation() <= (1 + hier.h) * (1 + grid.epsilon) + 1e-9

    def test_report_consistency(self, clustered_instance):
        g, hier, d = clustered_instance
        sol, grid = _solve_instance(g, hier, d)
        placement, report = repair_to_placement(g, hier, d, sol, grid)
        assert len(report.violation_per_level) == hier.h
        assert len(report.bound_per_level) == hier.h
        for v, b in zip(report.violation_per_level, report.bound_per_level):
            assert v <= b * (1 + 1e-9)

    def test_fanout_respected(self, clustered_instance):
        """After repair the refinement counts obey DEG(j) (Definition 3.4)."""
        g, hier, d = clustered_instance
        sol, grid = _solve_instance(g, hier, d)
        placement, _ = repair_to_placement(g, hier, d, sol, grid)
        # Reconstruct the level sets from the placement's mirror function
        # and check refinement counts level by level.
        from repro.hierarchy.mirror import mirror_sets

        mirrors = mirror_sets(placement)
        for j in range(hier.h):
            for (lv, node), _verts in mirrors.items():
                if lv != j:
                    continue
                kids = [
                    1
                    for (lv2, node2) in mirrors
                    if lv2 == j + 1 and node2 // hier.degrees[j] == node
                ]
                assert len(kids) <= hier.degrees[j]

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_many_seeds_height_three(self, hier_deep, seed):
        g = power_law(20, seed=seed)
        d = random_demands(g.n, hier_deep.total_capacity, fill=0.7, skew=0.5, seed=seed)
        sol, grid = _solve_instance(g, hier_deep, d, seed=seed)
        placement, _ = repair_to_placement(g, hier_deep, d, sol, grid)
        assert placement.max_violation() <= (1 + hier_deep.h) * (
            1 + grid.epsilon
        ) + 1e-9

    def test_height_mismatch_rejected(self, clustered_instance):
        g, hier, d = clustered_instance
        sol, grid = _solve_instance(g, hier, d)
        wrong = Hierarchy([8], [1.0, 0.0])
        with pytest.raises(SolverError):
            repair_to_placement(g, wrong, d, sol, grid)

    def test_non_nested_solution_rejected(self, hier_2x4):
        g = Graph(2, [(0, 1, 1.0)])
        d = np.array([0.4, 0.4])
        grid = DemandGrid.from_epsilon(hier_2x4, 2, 0.5)
        bad = TreeSolution(
            levels=[
                [LevelSet(np.array([0]), 2), LevelSet(np.array([1]), 2)],
                # level-2 set straddles the two level-1 sets:
                [LevelSet(np.array([0, 1]), 4)],
            ],
            cost=0.0,
        )
        with pytest.raises(SolverError):
            repair_to_placement(g, hier_2x4, d, bad, grid)

    def test_merging_preserves_mapped_cost_bound(self, clustered_instance):
        """The placement's true cost never exceeds the DP's tree cost."""
        g, hier, d = clustered_instance
        sol, grid = _solve_instance(g, hier, d)
        placement, _ = repair_to_placement(g, hier, d, sol, grid)
        assert placement.cost() <= sol.cost + 1e-6
