"""Tests for TreeSolution validation logic."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.hgpt.solution import LevelSet, TreeSolution


def make_solution():
    """Valid h=2 family over 4 leaves with qdemands [1, 2, 1, 2]."""
    return TreeSolution(
        levels=[
            [LevelSet(np.array([0, 1]), 3), LevelSet(np.array([2, 3]), 3)],
            [
                LevelSet(np.array([0]), 1),
                LevelSet(np.array([1]), 2),
                LevelSet(np.array([2, 3]), 3),
            ],
        ],
        cost=0.0,
    )


Q = np.array([1, 2, 1, 2], dtype=np.int64)


class TestValidate:
    def test_valid_family_passes(self):
        make_solution().validate(4, caps=[4, 3], qdemands=Q)

    def test_levels_accessor(self):
        sol = make_solution()
        assert len(sol.sets_at(1)) == 2
        assert len(sol.sets_at(2)) == 3
        with pytest.raises(SolverError):
            sol.sets_at(0)
        with pytest.raises(SolverError):
            sol.sets_at(3)

    def test_n_sets(self):
        assert make_solution().n_sets() == [2, 3]

    def test_overlap_detected(self):
        sol = make_solution()
        sol.levels[0][1] = LevelSet(np.array([1, 2, 3]), 5)
        with pytest.raises(SolverError):
            sol.validate(4, caps=[8, 8], qdemands=Q)

    def test_missing_cover_detected(self):
        sol = make_solution()
        sol.levels[0] = [LevelSet(np.array([0, 1]), 3)]
        with pytest.raises(SolverError):
            sol.validate(4, caps=[4, 3], qdemands=Q)

    def test_capacity_violation_detected(self):
        sol = make_solution()
        with pytest.raises(SolverError):
            sol.validate(4, caps=[2, 3], qdemands=Q)

    def test_cap_factor_slack_allows(self):
        sol = make_solution()
        sol.validate(4, caps=[2, 3], qdemands=Q, cap_factor=[2.0, 1.0])

    def test_qdemand_mismatch_detected(self):
        sol = make_solution()
        sol.levels[0][0] = LevelSet(np.array([0, 1]), 99)
        with pytest.raises(SolverError):
            sol.validate(4, caps=[99, 3], qdemands=Q)

    def test_laminarity_violation_detected(self):
        sol = make_solution()
        sol.levels[1] = [
            LevelSet(np.array([0, 2]), 2),  # straddles the level-1 sets
            LevelSet(np.array([1]), 2),
            LevelSet(np.array([3]), 2),
        ]
        with pytest.raises(SolverError):
            sol.validate(4, caps=[4, 3], qdemands=Q)

    def test_refinement_bound(self):
        sol = make_solution()
        # Level-1 set {0,1} refines into 2 sets; DEG = 1 should fail.
        with pytest.raises(SolverError):
            sol.validate(4, caps=[4, 3], qdemands=Q, max_sets=[1, 1])
        sol.validate(4, caps=[4, 3], qdemands=Q, max_sets=[2, 1])

    def test_empty_set_detected(self):
        sol = make_solution()
        sol.levels[0].append(LevelSet(np.array([], dtype=np.int64), 0))
        with pytest.raises(SolverError):
            sol.validate(4, caps=[4, 3], qdemands=Q)

    def test_levelset_sorts_vertices(self):
        s = LevelSet(np.array([3, 1, 2]), 5)
        assert s.vertices.tolist() == [1, 2, 3]
        assert s.size == 3
