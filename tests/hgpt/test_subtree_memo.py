"""Subtree digests and the DP memo (the incremental warm path).

The contract under test has two halves:

* **Digests move exactly with content** — churn that leaves a subtree's
  induced instance untouched leaves its digest untouched (so the memo
  can serve it), and churn that touches any leaf material, demand or
  internal up-weight changes every digest on the spine to the root (so
  stale tables can never be served).
* **Warm solves are bit-identical to cold solves** — a memo hit returns
  exactly the table a rebuild would produce, so solution cost and level
  sets match the cold path bit for bit across seeded churn traces.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.oracles import path_binary_tree
from repro.cache import reset_cache
from repro.hgpt.dp import DPConfig, DPStats, SubtreeMemo, solve_rhgpt


@pytest.fixture(autouse=True)
def fresh_cache(monkeypatch):
    """Memo tests own the process cache: pristine before and after."""
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DISABLE", raising=False)
    reset_cache()
    yield
    reset_cache()


def _material(n, touched=(), salt=0):
    """Synthetic per-vertex content hashes; ``touched`` vertices vary."""
    out = []
    for v in range(n):
        h = hashlib.blake2b(digest_size=16)
        h.update(f"v{v}".encode())
        if v in touched:
            h.update(f"salt{salt}".encode())
        out.append(h.digest())
    return out


def _subtree_vertices(bt):
    """Leaf-vertex set of every subtree."""
    sets = [set() for _ in range(bt.n_nodes)]
    for v in bt.postorder():
        if bt.is_leaf(v):
            sets[v] = {int(bt.vertex[v])}
        else:
            sets[v] = sets[int(bt.left[v])] | sets[int(bt.right[v])]
    return sets


def _canonical(sol):
    """Hashable bit-exact view of a TreeSolution's laminar family."""
    return (
        sol.cost,
        tuple(
            tuple((tuple(s.vertices.tolist()), s.qdemand) for s in level)
            for level in sol.levels
        ),
    )


class TestSubtreeDigests:
    @given(
        st.integers(min_value=3, max_value=10),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_digest_changes_iff_subtree_touched(self, n, data):
        """Perturbing one vertex's content dirties exactly its spine."""
        touched = data.draw(st.integers(min_value=0, max_value=n - 1))
        weights = [1.0 + 0.5 * i for i in range(n - 1)]
        demands = [1] * n
        bt = path_binary_tree(weights, demands)
        before = bt.subtree_digests(_material(n))
        after = bt.subtree_digests(_material(n, touched={touched}, salt=1))
        leaves = _subtree_vertices(bt)
        for v in bt.postorder():
            if touched in leaves[v]:
                assert after[v] != before[v], f"node {v} should be dirty"
            else:
                assert after[v] == before[v], f"node {v} should be clean"

    @given(st.integers(min_value=4, max_value=10), st.data())
    @settings(max_examples=40, deadline=None)
    def test_demand_change_dirties_spine(self, n, data):
        v = data.draw(st.integers(min_value=0, max_value=n - 1))
        weights = [1.0] * (n - 1)
        bt1 = path_binary_tree(weights, [1] * n)
        demands2 = [1] * n
        demands2[v] = 2
        bt2 = path_binary_tree(weights, demands2)
        mat = _material(n)
        d1, d2 = bt1.subtree_digests(mat), bt2.subtree_digests(mat)
        leaves = _subtree_vertices(bt1)
        for node in bt1.postorder():
            if v in leaves[node]:
                assert d1[node] != d2[node]
            else:
                assert d1[node] == d2[node]

    def test_up_weight_change_dirties_ancestors_only(self):
        """Reweighting an internal edge invalidates the spine above it."""
        n = 8
        bt = path_binary_tree([1.0] * (n - 1), [1] * n)
        mat = _material(n)
        base = bt.subtree_digests(mat)
        # Bump one non-root internal node's up-edge weight in place.
        target = next(
            v for v in bt.postorder() if not bt.is_leaf(v) and v != bt.root
        )
        saved = bt.up_weight[target]
        bt.up_weight[target] = saved + 1.0
        try:
            changed = bt.subtree_digests(mat)
        finally:
            bt.up_weight[target] = saved
        leaves = _subtree_vertices(bt)
        for v in bt.postorder():
            # The up-weight lives in the *parent's* digest: the target's
            # own subtree is untouched, every proper ancestor is dirty.
            if leaves[target] < leaves[v]:
                assert changed[v] != base[v]
            else:
                assert changed[v] == base[v]

    def test_digests_are_position_independent(self):
        """Equal content at different node ids yields equal digests."""
        bt = path_binary_tree([1.0, 1.0, 1.0], [2, 2, 2, 2])
        mat = [hashlib.blake2b(b"same", digest_size=16).digest()] * 4
        d = bt.subtree_digests(mat)
        leaf_digests = {d[v] for v in bt.postorder() if bt.is_leaf(v)}
        assert len(leaf_digests) == 1


def _churn_trace(rng, n, steps):
    """Yield ``steps`` weight vectors, each a local delta off the last."""
    w = 1.0 + rng.random(n - 1) * 4.0
    yield w.copy()
    for _ in range(steps):
        i = int(rng.integers(0, n - 1))
        w[i] = 1.0 + rng.random() * 4.0
        yield w.copy()


class TestMemoBitIdentity:
    def _solve_pair(self, bt, caps, deltas, beam, memo_stats):
        """One cold and one warm solve of the same instance."""
        cold = solve_rhgpt(bt, caps, deltas, beam_width=beam)
        digests = bt.subtree_digests(_material(int(bt.vertex.max()) + 1))
        memo = SubtreeMemo(digests, caps, deltas, beam)
        warm = solve_rhgpt(
            bt, caps, deltas, beam_width=beam, stats=memo_stats, memo=memo
        )
        return cold, warm

    def test_bit_identical_across_200_churn_traces(self):
        """Warm == cold on every step of 200 seeded weight-churn traces.

        Each trace perturbs one path edge per step; the memo persists
        across the whole run (as it does in the engine), so later traces
        and steps hit tables stored by earlier ones.  Every solution
        must still be bit-identical to a memo-free solve.
        """
        stats = DPStats()
        hits_total = 0
        for seed in range(200):
            rng = np.random.default_rng(1000 + seed)
            n = int(rng.integers(4, 9))
            demands = [int(x) for x in rng.integers(1, 4, size=n)]
            caps = [max(demands) + int(sum(demands) // 2), max(demands)]
            deltas = [0.0, 1.0, 2.0]
            for w in _churn_trace(rng, n, steps=2):
                bt = path_binary_tree(w, demands)
                cold, warm = self._solve_pair(bt, caps, deltas, 32, stats)
                assert _canonical(cold) == _canonical(warm)
            hits_total = stats.memo_hits
        # Churn is local: clean subtrees must actually be served warm.
        assert hits_total > 0
        assert stats.memo_misses > 0

    def test_exact_solve_with_bound_pruning_skips_memo(self):
        """Bound-pruned exact tables are context-dependent: no memo IO."""
        bt = path_binary_tree([1.0, 2.0, 3.0], [1, 1, 1, 1])
        caps, deltas = [4, 2], [0.0, 1.0, 2.0]
        digests = bt.subtree_digests(_material(4))
        stats = DPStats()
        memo = SubtreeMemo(digests, caps, deltas, None)
        sol = solve_rhgpt(bt, caps, deltas, stats=stats, memo=memo)
        assert stats.memo_hits == 0 and stats.memo_misses == 0
        cold = solve_rhgpt(bt, caps, deltas)
        assert _canonical(sol) == _canonical(cold)

    def test_exact_solve_without_bound_pruning_uses_memo(self):
        bt = path_binary_tree([1.0, 2.0, 3.0], [1, 1, 1, 1])
        caps, deltas = [4, 2], [0.0, 1.0, 2.0]
        digests = bt.subtree_digests(_material(4))
        cfg = DPConfig(bound_pruning=False)
        cold = solve_rhgpt(bt, caps, deltas, dp_config=cfg)
        stats = DPStats()
        memo = SubtreeMemo(digests, caps, deltas, None, dp_config=cfg)
        solve_rhgpt(bt, caps, deltas, dp_config=cfg, memo=memo)
        warm = solve_rhgpt(
            bt, caps, deltas, dp_config=cfg, stats=stats, memo=memo
        )
        assert stats.memo_hits > 0 and stats.memo_misses == 0
        assert _canonical(cold) == _canonical(warm)

    def test_beam_width_partitions_the_memo(self):
        """Tables stored under one beam must not serve another."""
        bt = path_binary_tree([1.0, 2.0, 3.0], [1, 1, 1, 1])
        caps, deltas = [4, 2], [0.0, 1.0, 2.0]
        digests = bt.subtree_digests(_material(4))
        memo32 = SubtreeMemo(digests, caps, deltas, 32)
        solve_rhgpt(bt, caps, deltas, beam_width=32, memo=memo32)
        stats = DPStats()
        memo64 = SubtreeMemo(digests, caps, deltas, 64)
        solve_rhgpt(
            bt, caps, deltas, beam_width=64, stats=stats, memo=memo64
        )
        assert stats.memo_hits == 0 and stats.memo_misses > 0
