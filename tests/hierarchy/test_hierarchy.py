"""Tests for the hierarchy tree model."""

import numpy as np
import pytest

from repro import Hierarchy
from repro.errors import InvalidInputError


class TestConstruction:
    def test_basic(self, hier_2x4):
        assert hier_2x4.h == 2
        assert hier_2x4.k == 8
        assert hier_2x4.total_capacity == 8.0

    def test_capacities_are_suffix_products(self, hier_deep):
        assert [hier_deep.capacity(j) for j in range(4)] == [8.0, 4.0, 2.0, 1.0]

    def test_counts(self, hier_2x4):
        assert [hier_2x4.count(j) for j in range(3)] == [1, 2, 8]

    def test_counts_irregular_degrees(self):
        h = Hierarchy([3, 2], [2.0, 1.0, 0.0])
        assert h.k == 6
        assert [h.count(j) for j in range(3)] == [1, 3, 6]

    def test_bad_degrees(self):
        with pytest.raises(InvalidInputError):
            Hierarchy([], [1.0])
        with pytest.raises(InvalidInputError):
            Hierarchy([0], [1.0, 0.0])

    def test_bad_multiplier_count(self):
        with pytest.raises(InvalidInputError):
            Hierarchy([2], [1.0])

    def test_increasing_multipliers_rejected(self):
        with pytest.raises(InvalidInputError):
            Hierarchy([2], [1.0, 2.0])

    def test_negative_multiplier_rejected(self):
        with pytest.raises(InvalidInputError):
            Hierarchy([2], [1.0, -0.5])

    def test_bad_capacity(self):
        with pytest.raises(InvalidInputError):
            Hierarchy([2], [1.0, 0.0], leaf_capacity=0.0)


class TestStructure:
    def test_children_and_parent_inverse(self, hier_deep):
        for level in range(hier_deep.h):
            for node in range(hier_deep.count(level)):
                for child in hier_deep.children(level, node):
                    assert hier_deep.parent(level + 1, int(child)) == node

    def test_leaves_under(self, hier_2x4):
        assert hier_2x4.leaves_under(1, 0).tolist() == [0, 1, 2, 3]
        assert hier_2x4.leaves_under(1, 1).tolist() == [4, 5, 6, 7]
        assert hier_2x4.leaves_under(0, 0).size == 8

    def test_ancestor_scalar_and_vector(self, hier_2x4):
        assert hier_2x4.ancestor(5, 1) == 1
        assert np.array_equal(
            hier_2x4.ancestor(np.array([0, 3, 4, 7]), 1), [0, 0, 1, 1]
        )

    def test_leaf_has_no_children(self, hier_2x4):
        with pytest.raises(InvalidInputError):
            hier_2x4.children(2, 0)

    def test_root_has_no_parent(self, hier_2x4):
        with pytest.raises(InvalidInputError):
            hier_2x4.parent(0, 0)


class TestLCA:
    def test_same_leaf_is_h(self, hier_2x4):
        assert hier_2x4.lca_level(3, 3) == 2

    def test_siblings(self, hier_2x4):
        assert hier_2x4.lca_level(0, 3) == 1
        assert hier_2x4.lca_level(4, 7) == 1

    def test_cross_root(self, hier_2x4):
        assert hier_2x4.lca_level(0, 4) == 0

    def test_vectorised(self, hier_2x4):
        a = np.array([0, 0, 3])
        b = np.array([0, 4, 2])
        assert np.array_equal(hier_2x4.lca_level(a, b), [2, 0, 1])

    def test_deep_hierarchy(self, hier_deep):
        assert hier_deep.lca_level(0, 1) == 2
        assert hier_deep.lca_level(0, 2) == 1
        assert hier_deep.lca_level(0, 4) == 0

    def test_exhaustive_against_digits(self, hier_deep):
        """Cross-check vectorised LCA against explicit digit decomposition."""
        for a in range(8):
            for b in range(8):
                da = [(a >> 2) & 1, (a >> 1) & 1, a & 1]
                db = [(b >> 2) & 1, (b >> 1) & 1, b & 1]
                prefix = 0
                for x, y in zip(da, db):
                    if x == y:
                        prefix += 1
                    else:
                        break
                assert hier_deep.lca_level(a, b) == prefix

    def test_pair_cost_multiplier(self, hier_2x4):
        assert hier_2x4.pair_cost_multiplier(0, 4) == 10.0
        assert hier_2x4.pair_cost_multiplier(0, 1) == 3.0
        assert hier_2x4.pair_cost_multiplier(1, 1) == 0.0


class TestTransforms:
    def test_normalized_shifts(self):
        h = Hierarchy([2, 2], [5.0, 3.0, 1.0])
        norm, offset = h.normalized()
        assert offset == 1.0
        assert norm.cm == (4.0, 2.0, 0.0)

    def test_normalized_noop(self, hier_2x4):
        norm, offset = hier_2x4.normalized()
        assert norm is hier_2x4
        assert offset == 0.0

    def test_flat(self, hier_2x4):
        flat = hier_2x4.flat()
        assert flat.h == 1
        assert flat.k == 8
        assert flat.cm == (10.0, 0.0)

    def test_equality_and_hash(self):
        a = Hierarchy([2, 4], [10.0, 3.0, 0.0])
        b = Hierarchy([2, 4], [10.0, 3.0, 0.0])
        c = Hierarchy([2, 4], [10.0, 2.0, 0.0])
        assert a == b and hash(a) == hash(b)
        assert a != c
