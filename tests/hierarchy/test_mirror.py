"""Tests for mirror functions: Lemma 2 (Eq. 1 = Eq. 3) and laminarity."""

import numpy as np
import pytest

from repro import Graph, Hierarchy, Placement
from repro.errors import InvalidInputError
from repro.graph.generators import grid_2d, power_law, random_demands
from repro.hierarchy.mirror import check_laminar, eq3_cost, mirror_sets


def _random_placement(g, hier, seed):
    rng = np.random.default_rng(seed)
    d = random_demands(g.n, hier.total_capacity, fill=0.8, seed=seed)
    leaf_of = rng.integers(0, hier.k, size=g.n)
    return Placement(g, hier, d, leaf_of)


class TestMirrorSets:
    def test_root_covers_everything(self, clustered_instance):
        g, h, d = clustered_instance
        p = _random_placement(g, h, 0)
        m = mirror_sets(p)
        assert m[(0, 0)].size == g.n

    def test_leaf_level_matches_assignment(self, hier_2x4):
        g = Graph(4, [])
        p = Placement(g, hier_2x4, np.full(4, 0.1), np.array([0, 0, 5, 7]))
        m = mirror_sets(p)
        assert m[(2, 0)].tolist() == [0, 1]
        assert m[(2, 5)].tolist() == [2]
        assert (2, 1) not in m  # empty subtrees omitted

    def test_laminar_always(self, hier_deep):
        g = power_law(30, seed=3)
        for seed in range(3):
            p = _random_placement(g, hier_deep, seed)
            check_laminar(hier_deep, mirror_sets(p), g.n)

    def test_check_laminar_catches_overlap(self, hier_2x4):
        bad = {
            (0, 0): np.array([0, 1]),
            (1, 0): np.array([0, 1]),
            (1, 1): np.array([1]),  # overlaps (1, 0)
            (2, 0): np.array([0, 1]),
        }
        with pytest.raises(InvalidInputError):
            check_laminar(hier_2x4, bad, 2)

    def test_check_laminar_catches_missing_cover(self, hier_2x4):
        bad = {
            (0, 0): np.array([0, 1]),
            (1, 0): np.array([0]),  # vertex 1 missing at level 1
            (2, 0): np.array([0]),
        }
        with pytest.raises(InvalidInputError):
            check_laminar(hier_2x4, bad, 2)


class TestLemma2:
    """Eq. (1) == Eq. (3) for normalised multipliers — the paper's Lemma 2."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_equality_random_placements(self, hier_2x4, seed):
        g = grid_2d(4, 5, weight_range=(0.5, 3.0), seed=seed)
        p = _random_placement(g, hier_2x4, seed)
        assert eq3_cost(p) == pytest.approx(p.cost())

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_equality_height_three(self, hier_deep, seed):
        g = power_law(25, seed=seed)
        p = _random_placement(g, hier_deep, seed)
        assert eq3_cost(p) == pytest.approx(p.cost())

    def test_general_cm_offset(self):
        """With cm(h) = c > 0, Eq. (1) = Eq. (3) + c * W (Lemma 1's offset)."""
        g = grid_2d(3, 3, weight_range=(1.0, 2.0), seed=7)
        h = Hierarchy([2, 2], [6.0, 3.0, 1.0])
        p = _random_placement(g, h, 1)
        offset = 1.0 * g.total_weight
        assert p.cost() == pytest.approx(eq3_cost(p) + offset)

    def test_flat_hierarchy_is_cut(self, hier_flat8):
        """For h = 1 with cm = (1, 0), Eq. (1) is the partition edge cut."""
        g = grid_2d(4, 4, weight_range=(0.5, 2.0), seed=2)
        p = _random_placement(g, hier_flat8, 3)
        assert p.cost() == pytest.approx(g.partition_cut_weight(p.leaf_of))
