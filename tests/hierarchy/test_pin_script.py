"""Tests for taskset / cpuset pinning artifact generation."""

import json

import numpy as np
import pytest

from repro import Graph, Placement
from repro.errors import InvalidInputError
from repro.hierarchy.pin_script import leaf_cpu_map, to_cpuset_config, to_taskset_script


@pytest.fixture
def placement(hier_2x4):
    g = Graph(3, [(0, 1, 1.0)])
    d = np.array([0.3, 0.3, 0.3])
    return Placement(g, hier_2x4, d, np.array([0, 0, 5]))


class TestLeafCpuMap:
    def test_single_cpu(self):
        m = leaf_cpu_map(4)
        assert m == {0: [0], 1: [1], 2: [2], 3: [3]}

    def test_hyperthread_pairs(self):
        m = leaf_cpu_map(2, cpus_per_leaf=2)
        assert m == {0: [0, 1], 1: [2, 3]}

    def test_first_cpu_offset(self):
        m = leaf_cpu_map(2, cpus_per_leaf=1, first_cpu=8)
        assert m == {0: [8], 1: [9]}

    def test_validation(self):
        with pytest.raises(InvalidInputError):
            leaf_cpu_map(0)
        with pytest.raises(InvalidInputError):
            leaf_cpu_map(2, cpus_per_leaf=0)


class TestTasksetScript:
    def test_one_line_per_task(self, placement):
        script = to_taskset_script(placement)
        lines = [ln for ln in script.splitlines() if ln.startswith("taskset")]
        assert len(lines) == 3

    def test_cpu_assignment_matches_leaf(self, placement):
        script = to_taskset_script(placement, cpus_per_leaf=2)
        # task 2 on leaf 5 -> cpus 10,11.
        assert 'taskset -a -cp 10,11 "${PID[task2]}"' in script

    def test_custom_names(self, placement):
        script = to_taskset_script(placement, task_names=["parse", "join", "sink"])
        assert "${PID[join]}" in script

    def test_header_mentions_cost(self, placement):
        script = to_taskset_script(placement)
        assert "placement cost" in script
        assert script.startswith("#!/bin/sh")

    def test_name_count_checked(self, placement):
        with pytest.raises(InvalidInputError):
            to_taskset_script(placement, task_names=["a"])


class TestCpusetConfig:
    def test_groups_by_leaf(self, placement):
        cfg = json.loads(to_cpuset_config(placement))
        assert set(cfg) == {"leaf0", "leaf5"}
        assert cfg["leaf0"]["tasks"] == ["task0", "task1"]
        assert cfg["leaf5"]["cpus"] == [5]

    def test_hyperthread_cpus(self, placement):
        cfg = json.loads(to_cpuset_config(placement, cpus_per_leaf=2))
        assert cfg["leaf5"]["cpus"] == [10, 11]

    def test_name_count_checked(self, placement):
        with pytest.raises(InvalidInputError):
            to_cpuset_config(placement, task_names=["a", "b"])
