"""Tests for placements: Eq. (1) cost, loads, violations."""

import numpy as np
import pytest

from repro import Graph, Hierarchy, Placement
from repro.errors import InvalidInputError


@pytest.fixture
def simple_instance(hier_2x4):
    g = Graph(4, [(0, 1, 2.0), (1, 2, 1.0), (2, 3, 4.0)])
    d = np.array([0.5, 0.5, 0.5, 0.5])
    return g, hier_2x4, d


class TestCost:
    def test_colocated_free(self, simple_instance):
        g, h, d = simple_instance
        p = Placement(g, h, d, np.zeros(4, dtype=np.int64))
        assert p.cost() == 0.0

    def test_same_socket(self, simple_instance):
        g, h, d = simple_instance
        # 0,1 on leaf 0; 2,3 on leaf 1 (same socket): edge (1,2) pays cm(1)=3.
        p = Placement(g, h, d, np.array([0, 0, 1, 1]))
        assert p.cost() == pytest.approx(3.0)

    def test_cross_socket(self, simple_instance):
        g, h, d = simple_instance
        # 0,1 on socket 0, 2,3 on socket 1: edge (1,2) pays cm(0)=10.
        p = Placement(g, h, d, np.array([0, 0, 4, 4]))
        assert p.cost() == pytest.approx(10.0)

    def test_full_spread(self, simple_instance):
        g, h, d = simple_instance
        p = Placement(g, h, d, np.array([0, 1, 4, 5]))
        # (0,1): same socket -> 3*2; (1,2): cross -> 10*1; (2,3): same -> 3*4
        assert p.cost() == pytest.approx(6.0 + 10.0 + 12.0)

    def test_level_cut_costs_sum_to_cost(self, clustered_instance):
        g, h, d = clustered_instance
        rng = np.random.default_rng(0)
        p = Placement(g, h, d, rng.integers(0, h.k, size=g.n))
        assert p.level_cut_costs().sum() == pytest.approx(p.cost())

    def test_nonzero_cm_h(self):
        """With cm(h) > 0 even co-located edges pay."""
        g = Graph(2, [(0, 1, 3.0)])
        h = Hierarchy([2], [5.0, 1.0])
        p = Placement(g, h, np.array([0.1, 0.1]), np.array([0, 0]))
        assert p.cost() == pytest.approx(3.0)

    def test_empty_graph_cost(self, hier_2x4):
        g = Graph(2, [])
        p = Placement(g, hier_2x4, np.array([0.1, 0.1]), np.array([0, 1]))
        assert p.cost() == 0.0


class TestLoads:
    def test_leaf_loads(self, simple_instance):
        g, h, d = simple_instance
        p = Placement(g, h, d, np.array([0, 0, 7, 7]))
        loads = p.leaf_loads()
        assert loads[0] == 1.0 and loads[7] == 1.0
        assert loads[1:7].sum() == 0.0

    def test_level_loads(self, simple_instance):
        g, h, d = simple_instance
        p = Placement(g, h, d, np.array([0, 1, 4, 5]))
        socket = p.level_loads(1)
        assert np.allclose(socket, [1.0, 1.0])
        assert p.level_loads(0)[0] == pytest.approx(2.0)

    def test_max_violation_feasible(self, simple_instance):
        g, h, d = simple_instance
        p = Placement(g, h, d, np.array([0, 1, 4, 5]))
        assert p.max_violation() <= 1.0
        assert p.is_feasible()

    def test_max_violation_overload(self, simple_instance):
        g, h, d = simple_instance
        d = np.array([0.9, 0.9, 0.9, 0.9])
        p = Placement(g, h, d, np.array([0, 0, 1, 2]))
        assert p.max_violation() == pytest.approx(1.8)
        assert not p.is_feasible()

    def test_level_violation_specific(self, hier_2x4):
        g = Graph(8, [])
        d = np.full(8, 0.6)
        # All eight on socket 0 leaves: leaf fine, socket overloaded.
        p = Placement(g, hier_2x4, d, np.array([0, 0, 1, 1, 2, 2, 3, 3]))
        assert p.level_violation(2) == pytest.approx(1.2)
        assert p.level_violation(1) == pytest.approx(4.8 / 4.0)
        assert p.level_violation(0) == pytest.approx(4.8 / 8.0)


class TestValidation:
    def test_bad_shapes(self, simple_instance):
        g, h, d = simple_instance
        with pytest.raises(InvalidInputError):
            Placement(g, h, d[:2], np.zeros(4, dtype=np.int64))
        with pytest.raises(InvalidInputError):
            Placement(g, h, d, np.zeros(2, dtype=np.int64))

    def test_bad_leaf_ids(self, simple_instance):
        g, h, d = simple_instance
        with pytest.raises(InvalidInputError):
            Placement(g, h, d, np.array([0, 0, 0, 99]))

    def test_nonpositive_demands(self, simple_instance):
        g, h, _ = simple_instance
        with pytest.raises(InvalidInputError):
            Placement(g, h, np.array([0.5, 0.0, 0.5, 0.5]), np.zeros(4, dtype=np.int64))

    def test_with_meta(self, simple_instance):
        g, h, d = simple_instance
        p = Placement(g, h, d, np.zeros(4, dtype=np.int64), meta={"a": 1})
        q = p.with_meta(b=2)
        assert q.meta == {"a": 1, "b": 2}
        assert p.meta == {"a": 1}

    def test_summary_is_string(self, simple_instance):
        g, h, d = simple_instance
        p = Placement(g, h, d, np.zeros(4, dtype=np.int64))
        s = p.summary()
        assert "cost=" in s and "max_violation=" in s
