"""Tests for ASCII reports and placement JSON round-trips."""

import numpy as np
import pytest

from repro import Graph, Placement
from repro.errors import InvalidInputError
from repro.hierarchy.report import (
    placement_from_json,
    placement_to_json,
    render_placement,
)


@pytest.fixture
def small_placement(hier_2x4):
    g = Graph(4, [(0, 1, 2.0), (2, 3, 1.0)])
    d = np.array([0.4, 0.3, 0.6, 0.2])
    return Placement(g, hier_2x4, d, np.array([0, 0, 4, 5]), meta={"solver": "test"})


class TestRender:
    def test_contains_all_nodes(self, small_placement):
        text = render_placement(small_placement)
        for level, count in ((0, 1), (1, 2), (2, 8)):
            for node in range(count):
                assert f"L{level}.{node}:" in text

    def test_shows_tasks_on_leaves(self, small_placement):
        text = render_placement(small_placement)
        assert "tasks=[0, 1]" in text
        assert "tasks=[2]" in text

    def test_overload_flag(self, hier_2x4):
        g = Graph(3, [])
        d = np.array([0.6, 0.6, 0.1])
        p = Placement(g, hier_2x4, d, np.array([0, 0, 1]))
        text = render_placement(p)
        assert "!OVERLOAD" in text

    def test_no_flag_when_feasible(self, small_placement):
        assert "!OVERLOAD" not in render_placement(small_placement)

    def test_summary_line(self, small_placement):
        text = render_placement(small_placement)
        assert "total cost" in text
        assert "worst violation" in text

    def test_task_list_elision(self, hier_2x4):
        g = Graph(20, [])
        d = np.full(20, 0.04)
        p = Placement(g, hier_2x4, d, np.zeros(20, dtype=np.int64))
        text = render_placement(p, max_tasks_shown=5)
        assert "…" in text


class TestJsonRoundTrip:
    def test_round_trip(self, small_placement):
        text = placement_to_json(small_placement)
        back = placement_from_json(text, small_placement.graph)
        assert np.array_equal(back.leaf_of, small_placement.leaf_of)
        assert np.allclose(back.demands, small_placement.demands)
        assert back.hierarchy == small_placement.hierarchy
        assert back.cost() == pytest.approx(small_placement.cost())

    def test_meta_preserved_when_jsonable(self, small_placement):
        text = placement_to_json(small_placement)
        back = placement_from_json(text, small_placement.graph)
        assert back.meta["solver"] == "test"

    def test_non_jsonable_meta_dropped(self, small_placement):
        p = small_placement.with_meta(weird=object())
        text = placement_to_json(p)
        back = placement_from_json(text, p.graph)
        assert "weird" not in back.meta
        assert back.meta["solver"] == "test"

    def test_bad_format_rejected(self, small_placement):
        with pytest.raises(InvalidInputError):
            placement_from_json('{"format": "nope"}', small_placement.graph)
