"""Documentation quality gate: every public item carries a docstring.

Deliverable (e) requires doc comments on every public item; this test
makes the requirement executable so it cannot silently regress.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.graph",
    "repro.flow",
    "repro.hierarchy",
    "repro.decomposition",
    "repro.hgpt",
    "repro.core",
    "repro.baselines",
    "repro.streaming",
    "repro.bench",
    "repro.utils",
]


def _all_modules():
    mods = []
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        mods.append(pkg)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                if info.name == "__main__":
                    continue  # importing it would run the CLI
                mods.append(importlib.import_module(f"{pkg_name}.{info.name}"))
    mods.append(importlib.import_module("repro.cli"))
    mods.append(importlib.import_module("repro.viz"))
    mods.append(importlib.import_module("repro.errors"))
    return {m.__name__: m for m in mods}.values()


@pytest.mark.parametrize("module", _all_modules(), ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), f"{module.__name__} lacks a docstring"


@pytest.mark.parametrize("module", _all_modules(), ids=lambda m: m.__name__)
def test_public_items_documented(module):
    missing = []
    for name in dir(module):
        if name.startswith("_"):
            continue
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", "").startswith("repro"):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    missing.append(f"{module.__name__}.{name}")
                if inspect.isclass(obj):
                    for mname, meth in inspect.getmembers(obj, inspect.isfunction):
                        if mname.startswith("_"):
                            continue
                        if meth.__qualname__.split(".")[0] != obj.__name__:
                            continue  # inherited
                        if not (meth.__doc__ and meth.__doc__.strip()):
                            missing.append(
                                f"{module.__name__}.{name}.{mname}"
                            )
    assert not missing, f"undocumented public items: {missing}"
