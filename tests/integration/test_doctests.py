"""Run the library's docstring examples as doctests."""

import doctest

import pytest

import repro.bench.tables
import repro.utils.timing

MODULES = [repro.bench.tables, repro.utils.timing]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, optionflags=doctest.ELLIPSIS)
    assert results.failed == 0
    assert results.attempted > 0  # the module actually carries examples
