"""Failure-injection tests: corrupted inputs must fail loudly, not quietly.

A numeric pipeline that silently absorbs NaNs, negative weights or
inconsistent intermediate state produces wrong placements that *look*
fine; these tests pin down the loud-failure contract at each layer.
"""


import numpy as np
import pytest

from repro import Graph, SolverConfig, solve_hgp
from repro.errors import InvalidInputError, ReproError, SolverError
from repro.decomposition.spectral_tree import spectral_decomposition_tree
from repro.graph.generators import grid_2d
from repro.hgpt.binarize import binarize
from repro.hgpt.dp import solve_rhgpt
from repro.hgpt.solution import LevelSet, TreeSolution


class TestGraphLayer:
    def test_nan_weight(self):
        with pytest.raises(InvalidInputError):
            Graph(2, [(0, 1, float("nan"))])

    def test_inf_weight(self):
        with pytest.raises(InvalidInputError):
            Graph(2, [(0, 1, float("inf"))])

    def test_negative_weight(self):
        with pytest.raises(InvalidInputError):
            Graph(3, [(0, 1, 1.0), (1, 2, -2.0)])


class TestDemandLayer:
    def test_nan_demand(self, hier_2x4):
        g = grid_2d(2, 2)
        d = np.array([0.5, float("nan"), 0.5, 0.5])
        with pytest.raises(ReproError):
            solve_hgp(g, hier_2x4, d, SolverConfig(n_trees=1))

    def test_zero_demand(self, hier_2x4):
        g = grid_2d(2, 2)
        d = np.array([0.5, 0.0, 0.5, 0.5])
        with pytest.raises(ReproError):
            solve_hgp(g, hier_2x4, d, SolverConfig(n_trees=1))

    def test_negative_demand(self, hier_2x4):
        g = grid_2d(2, 2)
        d = np.array([0.5, -0.1, 0.5, 0.5])
        with pytest.raises(ReproError):
            solve_hgp(g, hier_2x4, d, SolverConfig(n_trees=1))


class TestTreeLayer:
    def test_corrupted_edge_weight_detected(self):
        g = grid_2d(3, 3)
        tree = spectral_decomposition_tree(g, seed=0)
        tree.edge_weight[1] *= 2.0
        with pytest.raises(SolverError):
            tree.validate()

    def test_corrupted_parent_pointer_detected(self):
        g = grid_2d(3, 3)
        tree = spectral_decomposition_tree(g, seed=0)
        # Point some non-root node at a parent that doesn't list it.
        victim = next(
            v for v in range(tree.n_nodes)
            if tree.parent[v] >= 0 and v not in tree.children[0]
        )
        tree.parent[victim] = 0
        with pytest.raises(SolverError):
            tree.validate()


class TestDPLayer:
    def test_demand_exceeding_cap_rejected(self):
        g = grid_2d(2, 2)
        tree = spectral_decomposition_tree(g, seed=0)
        bt = binarize(tree, np.array([9, 1, 1, 1], dtype=np.int64))
        with pytest.raises(SolverError):
            solve_rhgpt(bt, caps=[4], deltas=[0.0, 1.0])

    def test_corrupted_solution_rejected_by_validate(self):
        bad = TreeSolution(
            levels=[[LevelSet(np.array([0, 1]), 99)]],  # wrong qdemand
            cost=0.0,
        )
        with pytest.raises(SolverError):
            bad.validate(2, caps=[100], qdemands=np.array([1, 1]))


class TestPipelineContainment:
    def test_error_messages_name_the_culprit(self, hier_2x4):
        """Infeasibility errors must identify the offending vertex."""
        g = grid_2d(2, 2)
        d = np.array([0.5, 0.5, 0.5, 7.0])
        with pytest.raises(ReproError, match="vertex 3"):
            solve_hgp(g, hier_2x4, d, SolverConfig(n_trees=1))

    def test_placement_constructor_rejects_corrupt_assignment(self, hier_2x4):
        from repro import Placement

        g = grid_2d(2, 2)
        d = np.full(4, 0.2)
        with pytest.raises(InvalidInputError):
            Placement(g, hier_2x4, d, np.array([0, 1, 2, -5]))
