"""Executable checks of the paper's main claims (theorem-level integration).

These are the library's answer to "did you reproduce the paper": each test
exercises one theorem's statement end-to-end.
"""

import numpy as np
import pytest

from repro import Graph, Hierarchy, SolverConfig, exact_hgp, solve_hgp
from repro.graph.generators import (
    grid_2d,
    planted_partition,
    random_demands,
    random_tree,
)
from repro.hierarchy.mirror import eq3_cost


class TestLemma1:
    """Normalisation preserves optimisation (costs shift by cm(h) · W)."""

    def test_argmin_invariant(self):
        g = grid_2d(2, 3, weight_range=(0.5, 2.0), seed=0)
        d = np.full(6, 0.5)
        general = Hierarchy([2, 2], [6.0, 3.0, 1.0])
        norm, offset = general.normalized()
        p_gen = exact_hgp(g, general, d)
        p_norm = exact_hgp(g, norm, d)
        assert p_gen.cost() == pytest.approx(
            p_norm.cost() + offset * g.total_weight
        )


class TestLemma2:
    """Eq. (1) == Eq. (3) — covered extensively in tests/hierarchy, spot
    check here at pipeline scale."""

    def test_on_solver_output(self, clustered_instance):
        g, hier, d = clustered_instance
        res = solve_hgp(g, hier, d, SolverConfig(seed=0, n_trees=2, refine=False))
        assert eq3_cost(res.placement) == pytest.approx(res.cost)


class TestTheorem2:
    """Tree solver: optimal cost, capacity violated <= (1+eps)(1+h)."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_tree_cost_optimal_vs_exact(self, seed):
        """On instances where G *is* a tree, the DP's mapped solution
        should match the exact optimum (paper: optimal cost on trees)."""
        g = random_tree(7, weight_range=(0.5, 3.0), seed=seed)
        hier = Hierarchy([2, 2], [4.0, 1.0, 0.0])
        d = np.full(7, 0.4)
        # Exact optimum allowed the same violation budget as the pipeline.
        cfg = SolverConfig(
            seed=seed, n_trees=8, grid_mode="epsilon", epsilon=0.2, refine=True
        )
        res = solve_hgp(g, hier, d, cfg)
        bound_violation = (1 + 0.2) * (1 + hier.h)
        opt = exact_hgp(g, hier, d, violation=1.0)
        # Bicriteria: our cost must not exceed OPT by much on tiny trees
        # (the tree embedding is lossless when G is a tree), while our
        # violation may exceed 1.
        assert res.cost <= opt.cost() * 1.5 + 1e-9
        assert res.placement.max_violation() <= bound_violation + 1e-9

    def test_capacity_bound_tight_family(self):
        """Stress the (1+h) factor: many equal sets force repair merges."""
        hier = Hierarchy([2, 2], [4.0, 1.0, 0.0])
        g = Graph(8, [])  # no edges: cost-free, pure packing
        d = np.full(8, 0.45)
        cfg = SolverConfig(seed=0, n_trees=2, grid_mode="epsilon", epsilon=0.3)
        res = solve_hgp(g, hier, d, cfg)
        assert res.placement.max_violation() <= (1 + 0.3) * (1 + 2) + 1e-9


class TestTheorem5:
    """Repair: fan-out respected, violation per level <= (1+j)(1+eps)."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_per_level_bounds(self, seed):
        hier = Hierarchy([2, 2, 2], [8.0, 4.0, 1.0, 0.0])
        g = planted_partition(4, 4, 0.8, 0.1, seed=seed)
        d = random_demands(g.n, hier.total_capacity, fill=0.8, skew=0.4, seed=seed)
        cfg = SolverConfig(seed=seed, n_trees=3, refine=False)
        res = solve_hgp(g, hier, d, cfg)
        for j in range(1, hier.h + 1):
            assert res.placement.level_violation(j) <= (1 + j) * (
                1 + res.grid.epsilon
            ) + 1e-9


class TestTheorem7:
    """Ensemble arg-min: more trees never hurt; mapped <= tree cost."""

    def test_monotone_in_ensemble_prefix(self, clustered_instance):
        g, hier, d = clustered_instance
        cfg = SolverConfig(seed=0, n_trees=6, refine=False)
        res = solve_hgp(g, hier, d, cfg)
        prefix_best = np.minimum.accumulate(res.tree_costs)
        assert res.cost == pytest.approx(prefix_best[-1])
        assert (np.diff(prefix_best) <= 1e-12).all()

    def test_proposition1_every_member(self, clustered_instance):
        g, hier, d = clustered_instance
        cfg = SolverConfig(seed=0, n_trees=6, refine=False)
        res = solve_hgp(g, hier, d, cfg)
        for mapped, dp in zip(res.tree_costs, res.dp_costs):
            assert mapped <= dp + 1e-6


class TestTheorem1EndToEnd:
    """The headline bicriteria claim measured against exact ground truth."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_cost_ratio_small_instances(self, seed):
        g = grid_2d(2, 4, weight_range=(0.5, 2.0), seed=seed)
        hier = Hierarchy([2, 2], [5.0, 1.0, 0.0])
        d = np.full(8, 0.5)
        opt = exact_hgp(g, hier, d, violation=1.0)
        cfg = SolverConfig(seed=seed, n_trees=8, grid_mode="epsilon", epsilon=0.2)
        res = solve_hgp(g, hier, d, cfg)
        # O(log n) worst case; on these 8-vertex meshes the realized
        # ratio should be a small constant.
        if opt.cost() > 0:
            assert res.cost / opt.cost() <= 2.5
        else:
            assert res.cost == 0.0
        assert res.placement.max_violation() <= (1 + 0.2) * (1 + 2) + 1e-9


class TestTheoremsAcrossShapes:
    """Widen theorem coverage across hierarchy shapes and graph families."""

    SHAPES = [
        Hierarchy([4], [3.0, 0.0]),
        Hierarchy([3, 2], [6.0, 2.0, 0.0]),
        Hierarchy([2, 2, 2], [8.0, 4.0, 1.0, 0.0]),
    ]

    @pytest.mark.parametrize("shape_idx", range(3))
    @pytest.mark.parametrize("family", ["grid", "powerlaw", "hypercube"])
    def test_violation_bounds_everywhere(self, shape_idx, family):
        from repro.bench import make_instance

        hier = self.SHAPES[shape_idx]
        inst = make_instance(family, 24, hier, fill=0.65, skew=0.4, seed=51)
        cfg = SolverConfig(seed=0, n_trees=2, refine=False)
        res = solve_hgp(inst.graph, inst.hierarchy, inst.demands, cfg)
        for j in range(1, hier.h + 1):
            assert res.placement.level_violation(j) <= (1 + j) * (
                1 + res.grid.epsilon
            ) + 1e-9
        for mapped, dp in zip(res.tree_costs, res.dp_costs):
            assert mapped <= dp + 1e-6

    @pytest.mark.parametrize("shape_idx", range(3))
    def test_lemma1_normalisation_across_shapes(self, shape_idx):
        base = self.SHAPES[shape_idx]
        shifted = Hierarchy(
            base.degrees, [c + 2.0 for c in base.cm], base.leaf_capacity
        )
        g = grid_2d(2, 3, weight_range=(0.5, 2.0), seed=shape_idx)
        d = np.full(6, 0.4)
        rng = np.random.default_rng(shape_idx)
        leaf_of = rng.integers(0, base.k, size=6)
        from repro import Placement

        p_base = Placement(g, base, d, leaf_of)
        p_shift = Placement(g, shifted, d, leaf_of)
        assert p_shift.cost() == pytest.approx(
            p_base.cost() + 2.0 * g.total_weight
        )
