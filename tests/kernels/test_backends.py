"""Backend registry behaviour + cross-backend kernel equivalence.

The seam's contract (``src/repro/kernels``) is that every backend
returns — and mutates — *bit-identical* arrays for every kernel, so the
choice of backend can never change solver output, only wall-clock.  The
hypothesis suites here generate random inputs for all six kernels and
compare each registered backend against the pure-python reference with
exact (not approximate) equality; the solver-level tests assert that
whole ``solve_rhgpt`` / ``run_pipeline`` runs are reproduced verbatim
under every backend and that the resolved backend lands in run-report
meta.  Everything passes with or without numba installed: the
cross-backend comparisons skip when only python is registered, and the
fallback tests skip in the opposite direction.
"""

import importlib.util

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.kernels as kernels
from repro.cache import CacheConfig
from repro.core.config import SolverConfig
from repro.core.engine import run_pipeline
from repro.errors import InvalidInputError
from repro.graph.generators import planted_partition, random_demands
from repro.hierarchy.hierarchy import Hierarchy
from repro.kernels import (
    ENV_VAR,
    KERNEL_NAMES,
    KernelBackend,
    KernelConfig,
    available_backends,
    get_backend,
    resolve_backend,
    use_backend,
)

HAVE_NUMBA = importlib.util.find_spec("numba") is not None

#: Backends under test; the first is the bit-exact reference.
BACKENDS = ["python"] + (["numba"] if HAVE_NUMBA else [])

cross_backend = pytest.mark.skipif(
    len(BACKENDS) < 2, reason="only the python backend is installed"
)


# ----------------------------------------------------------------------
# registry / selection
# ----------------------------------------------------------------------


class TestRegistry:
    def test_python_always_first_and_available(self):
        names = available_backends()
        assert names[0] == "python"

    def test_numba_availability_matches_import(self):
        assert ("numba" in available_backends()) == HAVE_NUMBA

    def test_unknown_explicit_backend_raises(self):
        with pytest.raises(InvalidInputError):
            resolve_backend("cython")

    def test_kernel_config_validates(self):
        assert KernelConfig().backend == "auto"
        assert KernelConfig(backend="python").backend == "python"
        with pytest.raises(InvalidInputError):
            KernelConfig(backend="fast")

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba is installed")
    def test_missing_numba_falls_back_to_python(self):
        assert resolve_backend("numba").name == "python"

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_pinned_numba_resolves(self):
        assert resolve_backend("numba").name == "numba"

    def test_env_override_selects_backend(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "python")
        assert get_backend().name == "python"
        assert resolve_backend("auto").name == "python"

    def test_unknown_env_value_autodetects(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "turbo")
        assert get_backend().name in available_backends()

    def test_explicit_scope_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numba")  # may not even be installed
        with use_backend("python") as b:
            assert b.name == "python"
            assert get_backend() is b

    def test_use_backend_nests_and_restores(self):
        outer_default = get_backend()
        with use_backend("python") as b1:
            assert get_backend() is b1
            with use_backend("auto") as b2:
                assert get_backend() is b2
            assert get_backend() is b1
        assert get_backend() is outer_default

    def test_backend_abi_is_enforced(self):
        with pytest.raises(InvalidInputError):
            KernelBackend("partial", csr_matvec=lambda *a: None)
        fns = {name: (lambda *a: None) for name in KERNEL_NAMES}
        with pytest.raises(InvalidInputError):
            KernelBackend("extra", surprise=lambda *a: None, **fns)
        assert KernelBackend("ok", **fns).name == "ok"

    def test_register_backend_replaces_and_none_means_unavailable(self):
        fns = {name: (lambda *a: None) for name in KERNEL_NAMES}
        try:
            kernels.register_backend("dummy", lambda: None)
            assert "dummy" not in available_backends()
            kernels.register_backend("dummy", lambda: KernelBackend("dummy", **fns))
            assert "dummy" in available_backends()
            assert resolve_backend("dummy").name == "dummy"
        finally:
            kernels._FACTORIES.pop("dummy", None)
            kernels._INSTANCES.pop("dummy", None)

    def test_dispatch_metric_counts_kernel_and_backend(self):
        # Other suites reset the metrics registry; drop cached children
        # so dispatch re-binds to the live registry.
        kernels._DISPATCH.clear()
        child = kernels._dispatch_child("csr_matvec", "python")
        from repro.obs.metrics import get_registry

        fam = get_registry().counter(
            "repro_kernel_dispatch_total",
            "Hot-path kernel invocations by kernel name and backend",
            labelnames=("kernel", "backend"),
        )
        before = fam.value(kernel="csr_matvec", backend="python")
        indptr = np.asarray([0, 1], dtype=np.int64)
        indices = np.asarray([0], dtype=np.int64)
        data = np.asarray([2.0])
        with use_backend("python"):
            kernels.csr_matvec(indptr, indices, data, np.asarray([3.0]))
        assert fam.value(kernel="csr_matvec", backend="python") == before + 1
        assert child is kernels._dispatch_child("csr_matvec", "python")


# ----------------------------------------------------------------------
# cross-backend equivalence (bit-exact, hypothesis-generated inputs)
# ----------------------------------------------------------------------


def _backends():
    return [resolve_backend(name) for name in BACKENDS]


def _dinic_network(rng):
    """A random paired-arc residual network (arc ``a ^ 1`` reverses ``a``)."""
    n = int(rng.integers(2, 9))
    m = int(rng.integers(1, 18))
    heads, tails, caps = [], [], []
    for _ in range(m):
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u == v:
            v = (u + 1) % n
        c = float(rng.uniform(0.1, 5.0))
        heads += [v, u]
        tails += [u, v]
        # Occasionally give the reverse arc capacity too (mid-run
        # residual networks look like this).
        caps += [c, float(rng.uniform(0.0, 1.0)) if rng.random() < 0.3 else 0.0]
    heads = np.asarray(heads, dtype=np.int64)
    tails = np.asarray(tails, dtype=np.int64)
    caps = np.asarray(caps, dtype=np.float64)
    arc_ids = np.argsort(tails, kind="stable").astype(np.int64)
    arc_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(tails, minlength=n), out=arc_indptr[1:])
    s, t = 0, n - 1
    return heads, caps, arc_indptr, arc_ids, s, t


@cross_backend
class TestCrossBackendEquivalence:
    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=60, deadline=None)
    def test_dinic_bfs_levels(self, seed):
        rng = np.random.default_rng(seed)
        heads, caps, arc_indptr, arc_ids, s, _ = _dinic_network(rng)
        ref = None
        for b in _backends():
            level = b.dinic_bfs_levels(heads, caps.copy(), arc_indptr, arc_ids, s)
            level = np.asarray(level)
            if ref is None:
                ref = level
            else:
                assert np.array_equal(level, ref), b.name

    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=60, deadline=None)
    def test_dinic_blocking_flow_and_full_maxflow(self, seed):
        rng = np.random.default_rng(seed)
        heads, caps0, arc_indptr, arc_ids, s, t = _dinic_network(rng)
        results = []
        for b in _backends():
            caps = caps0.copy()
            total = 0.0
            phases = []
            while True:
                level = np.asarray(
                    b.dinic_bfs_levels(heads, caps, arc_indptr, arc_ids, s)
                )
                if level[t] < 0:
                    break
                pushed = b.dinic_blocking_flow(
                    heads, caps, arc_indptr, arc_ids, level, s, t
                )
                phases.append(float(pushed))
                total += pushed
            results.append((b.name, phases, total, caps, level))
        _, phases0, total0, caps_ref, level_ref = results[0]
        for name, phases, total, caps, level in results[1:]:
            assert phases == phases0, name  # exact float equality, per phase
            assert total == total0, name
            assert np.array_equal(caps, caps_ref), name
            assert np.array_equal(level, level_ref), name

    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=80, deadline=None)
    def test_dp_tile_merge(self, seed):
        rng = np.random.default_rng(seed)
        h = int(rng.integers(1, 4))
        na, nb = int(rng.integers(1, 7)), int(rng.integers(1, 7))
        pa_sig = rng.integers(0, 6, size=(na, h)).astype(np.int64)
        pb_sig = rng.integers(0, 6, size=(nb, h)).astype(np.int64)
        pa_cost = rng.uniform(0.0, 10.0, size=na)
        pb_cost = rng.uniform(0.0, 10.0, size=nb)
        caps = rng.integers(2, 9, size=h).astype(np.int64)
        budget = float("inf") if rng.random() < 0.5 else float(rng.uniform(0.0, 15.0))
        start = int(rng.integers(0, na * nb))
        stop = int(rng.integers(start, na * nb + 1))
        ref = None
        for b in _backends():
            out = b.dp_tile_merge(
                pa_sig, pa_cost, pb_sig, pb_cost, caps, start, stop, budget
            )
            if ref is None:
                ref = out
            else:
                for got, want in zip(out[:5], ref[:5]):
                    assert np.array_equal(np.asarray(got), np.asarray(want)), b.name
                assert int(out[5]) == int(ref[5]), b.name

    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=80, deadline=None)
    def test_dp_dominance_prune(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(1, 45))
        h = int(rng.integers(1, 5))
        sigs = rng.integers(0, 6, size=(m, h)).astype(np.int64)
        # Integer costs produce ties, exercising scan-order stability.
        costs = rng.integers(0, 8, size=m).astype(np.float64)
        order = np.lexsort(
            tuple(sigs[:, i] for i in range(h - 1, -1, -1)) + (costs,)
        )
        beam = -1 if rng.random() < 0.5 else int(rng.integers(1, 6))
        ref = None
        for b in _backends():
            kept, truncated = b.dp_dominance_prune(sigs, costs, order, beam)
            kept = np.asarray(kept)
            if ref is None:
                ref = (kept, bool(truncated))
            else:
                assert np.array_equal(kept, ref[0]), b.name
                assert bool(truncated) == ref[1], b.name

    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=60, deadline=None)
    def test_csr_matvec(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 13))
        dense = rng.uniform(-2.0, 2.0, size=(n, n))
        dense[rng.random(size=(n, n)) < 0.5] = 0.0
        import scipy.sparse as sp

        mat = sp.csr_matrix(dense)
        indptr = mat.indptr.astype(np.int64)
        indices = mat.indices.astype(np.int64)
        data = mat.data.astype(np.float64)
        x = rng.uniform(-1.0, 1.0, size=n)
        ref = None
        for b in _backends():
            y = np.asarray(b.csr_matvec(indptr, indices, data, x))
            if ref is None:
                ref = y
            else:
                # Bit-exact, not approx: accumulation order is part of
                # the kernel spec (the Fiedler cache digests depend on it).
                assert np.array_equal(y, ref), b.name

    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=60, deadline=None)
    def test_heavy_edge_match(self, seed):
        rng = np.random.default_rng(seed)
        from repro.graph.graph import Graph

        n = int(rng.integers(2, 20))
        m = int(rng.integers(0, 40))
        edges = []
        for _ in range(m):
            u = int(rng.integers(0, n))
            v = int(rng.integers(0, n))
            if u != v:
                edges.append((u, v, float(rng.uniform(0.1, 5.0))))
        g = Graph(n, edges)
        tie = rng.permutation(n).astype(np.int64)
        fits = (
            np.ones(g.indices.size, dtype=bool)
            if rng.random() < 0.5
            else rng.random(g.indices.size) < 0.8
        )
        rounds = int(rng.integers(1, 5))
        ref = None
        for b in _backends():
            match = np.asarray(
                b.heavy_edge_match(g.indptr, g.indices, g.adj_weights, tie, fits, rounds)
            )
            if ref is None:
                ref = match
            else:
                assert np.array_equal(match, ref), b.name


# ----------------------------------------------------------------------
# solver-level determinism + report stamping
# ----------------------------------------------------------------------


def _canonical_solution(sol):
    return (
        sol.cost,
        [
            [(tuple(int(v) for v in s.vertices), int(s.qdemand)) for s in level]
            for level in sol.levels
        ],
    )


class TestSolverDeterminism:
    def test_solve_rhgpt_bit_identical_across_backends(self):
        from repro.bench.oracles import path_binary_tree
        from repro.hgpt.dp import solve_rhgpt

        bt = path_binary_tree([1.0, 2.5, 0.5, 3.0, 1.5], [2, 1, 3, 1, 2])
        caps = [6, 3]
        deltas = [0.0, 4.0, 1.0]
        runs = []
        for name in BACKENDS:
            with use_backend(name):
                runs.append(_canonical_solution(solve_rhgpt(bt, caps, deltas)))
        for got in runs[1:]:
            assert got == runs[0]

    def test_run_pipeline_identical_and_meta_stamped(self):
        g = planted_partition(4, 4, 0.8, 0.1, seed=5)
        hier = Hierarchy([2, 4], [10.0, 3.0, 0.0])
        d = random_demands(g.n, hier.total_capacity, fill=0.5, skew=0.3, seed=6)
        runs = {}
        for name in BACKENDS:
            cfg = SolverConfig(
                seed=0,
                n_trees=2,
                refine=False,
                cache=CacheConfig(enabled=False),
                kernel=KernelConfig(backend=name),
            )
            res = run_pipeline(g, hier, d, cfg)
            assert res.kernel_backend == name
            report = res.report()
            assert report.meta["kernel_backend"] == name
            runs[name] = (res.cost, res.placement.leaf_of.copy())
        ref_cost, ref_leaf = runs[BACKENDS[0]]
        for name in BACKENDS[1:]:
            cost, leaf = runs[name]
            assert cost == ref_cost  # exact — backends may not drift
            assert np.array_equal(leaf, ref_leaf)

    def test_auto_resolves_and_stamps(self):
        g = planted_partition(3, 4, 0.8, 0.1, seed=7)
        hier = Hierarchy([2, 3], [5.0, 2.0, 0.0])
        d = random_demands(g.n, hier.total_capacity, fill=0.5, skew=0.3, seed=8)
        cfg = SolverConfig(
            seed=0, n_trees=2, refine=False, cache=CacheConfig(enabled=False)
        )
        res = run_pipeline(g, hier, d, cfg)
        expected = "numba" if HAVE_NUMBA else "python"
        assert res.kernel_backend == expected
        assert res.report().meta["kernel_backend"] == expected
