"""Coarsening invariants: matching validity, conservation, determinism.

The hypothesis suites check the properties ISSUE 6 pins down: total
vertex weight is conserved at every level, the maps compose to a valid
fine→coarsest labelling, a projected coarse partition costs exactly what
it costs on the coarse graph, and heavy-edge matching returns a valid
matching.  Determinism (same seed ⇒ bit-identical hierarchy) guards the
reproducibility contract of the whole front-end.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Graph
from repro.baselines.fm import eq1_cost
from repro.decomposition.contraction import (
    heavy_edge_matching,
    matching_labels,
    two_hop_matching,
)
from repro.errors import InvalidInputError
from repro.graph.generators import barabasi_albert, grid_2d
from repro.hierarchy.hierarchy import Hierarchy
from repro.multilevel import coarsen_graph
from repro.utils.rng import ensure_rng


@st.composite
def weighted_graphs(draw, max_n=24, max_m=60):
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    edges = []
    for _ in range(m):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            continue
        w = draw(
            st.floats(
                min_value=0.01, max_value=50.0, allow_nan=False, allow_infinity=False
            )
        )
        edges.append((u, v, w))
    g = Graph(n, edges)
    demands = np.asarray(
        draw(
            st.lists(
                st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return g, demands, seed


class TestMatchingValidity:
    @given(weighted_graphs())
    @settings(max_examples=60, deadline=None)
    def test_matching_is_symmetric_and_loopless(self, gds):
        g, d, seed = gds
        match = heavy_edge_matching(g, ensure_rng(seed))
        for v in range(g.n):
            p = int(match[v])
            if p >= 0:
                assert p != v
                assert int(match[p]) == v

    @given(weighted_graphs())
    @settings(max_examples=60, deadline=None)
    def test_matched_pairs_are_edges(self, gds):
        g, d, seed = gds
        match = heavy_edge_matching(g, ensure_rng(seed))
        adjacency = {(int(u), int(v)) for u, v, _ in g.iter_edges()}
        adjacency |= {(v, u) for u, v in adjacency}
        for v in range(g.n):
            if match[v] >= 0:
                assert (v, int(match[v])) in adjacency

    @given(weighted_graphs())
    @settings(max_examples=40, deadline=None)
    def test_weight_cap_respected(self, gds):
        g, d, seed = gds
        cap = float(d.max()) * 1.5
        match = heavy_edge_matching(
            g, ensure_rng(seed), vertex_weights=d, max_weight=cap
        )
        for v in range(g.n):
            p = int(match[v])
            if p >= 0:
                assert d[v] + d[p] <= cap * (1 + 1e-6)

    def test_labels_cover_pairs(self):
        match = np.asarray([1, 0, -1, 4, 3], dtype=np.int64)
        labels = matching_labels(match)
        assert labels[0] == labels[1]
        assert labels[3] == labels[4]
        assert len({int(labels[0]), int(labels[2]), int(labels[3])}) == 3
        assert labels.max() == 2


class TestCoarsenInvariants:
    @given(weighted_graphs())
    @settings(max_examples=40, deadline=None)
    def test_weight_conserved_per_level(self, gds):
        g, d, seed = gds
        levels = coarsen_graph(g, d, target_n=2, rng=seed)
        for dem in levels.demands:
            assert dem.sum() == pytest.approx(d.sum(), rel=1e-12)
        for fine_g, mp, coarse_g in zip(
            levels.graphs, levels.maps, levels.graphs[1:]
        ):
            assert mp.shape == (fine_g.n,)
            assert mp.min() >= 0 and mp.max() == coarse_g.n - 1

    @given(weighted_graphs())
    @settings(max_examples=40, deadline=None)
    def test_maps_compose_to_valid_labelling(self, gds):
        g, d, seed = gds
        levels = coarsen_graph(g, d, target_n=2, rng=seed)
        composed = levels.compose()
        assert composed.shape == (g.n,)
        assert composed.min() >= 0 and composed.max() < levels.coarsest.n
        # Composing by hand must agree.
        manual = np.arange(g.n, dtype=np.int64)
        for mp in levels.maps:
            manual = mp[manual]
        assert np.array_equal(composed, manual)

    @given(weighted_graphs())
    @settings(max_examples=40, deadline=None)
    def test_projected_partition_cost_matches_coarse(self, gds):
        g, d, seed = gds
        levels = coarsen_graph(g, d, target_n=2, rng=seed)
        coarse = levels.coarsest
        hier = Hierarchy([2, 2], [6.0, 2.0, 0.0], leaf_capacity=1e9)
        rng = ensure_rng(seed)
        coarse_leaf = rng.integers(0, hier.k, size=coarse.n)
        fine_leaf = levels.project(coarse_leaf)
        # Contracted (intra-supervertex) edges are co-located on both
        # sides, so they contribute cm(h) * w to both costs equally only
        # when cm(h) == 0 — which this hierarchy has.  The remaining
        # inter-supervertex weight is conserved by Graph.contract.
        assert eq1_cost(g, hier, fine_leaf) == pytest.approx(
            eq1_cost(coarse, hier, coarse_leaf), rel=1e-9, abs=1e-9
        )

    def test_shrink_and_stats_on_mesh(self):
        g = grid_2d(24, 24, seed=0)
        d = np.full(g.n, 0.01)
        levels = coarsen_graph(g, d, target_n=40, rng=7)
        st_ = levels.stats
        assert st_.n_coarsest <= 40 or st_.stalled
        assert st_.levels == len(levels.graphs)
        assert st_.shrink_factor >= 10.0
        assert len(st_.level_shrinks) == len(levels.maps)
        assert all(0 < s < 1 for s in st_.level_shrinks)
        # Heavy-edge matching should nearly halve a mesh per level.
        assert max(st_.level_shrinks) < 0.9

    def test_demand_cap_keeps_levels_feasible(self):
        g = barabasi_albert(400, 2, seed=3)
        rng = ensure_rng(4)
        d = rng.uniform(0.3, 1.0, size=g.n)
        levels = coarsen_graph(g, d, target_n=16, max_weight=1.0, rng=5)
        for dem in levels.demands:
            assert dem.max() <= 1.0 + 1e-9

    def test_star_heavy_graph_coarsens_via_two_hop(self):
        # A star with unit demands and a tight cap stalls both plain
        # matching (the hub pairs one spoke) and many-to-one aggregation
        # (the hub cluster rides the cap).  The cap-aware 2-hop escape
        # pairs spokes with each other through the hub, so coarsening
        # must make real progress instead of stopping at ~n vertices.
        n = 201
        g = Graph(n, [(0, i, 1.0) for i in range(1, n)])
        d = np.ones(n)
        levels = coarsen_graph(g, d, target_n=8, max_weight=4.0, rng=0)
        st_ = levels.stats
        assert st_.n_coarsest <= 60
        assert st_.shrink_factor >= 3.0
        for dem in levels.demands:
            assert dem.max() <= 4.0 + 1e-9

    def test_two_hop_pairs_spokes_and_respects_cap(self):
        n = 11
        g = Graph(n, [(0, i, 1.0) for i in range(1, n)])
        d = np.ones(n)
        match = heavy_edge_matching(
            g, ensure_rng(3), vertex_weights=d, max_weight=2.0
        )
        out = two_hop_matching(g, match, vertex_weights=d, max_weight=2.0)
        # Valid matching: symmetric, loopless, cap respected.
        for v in range(n):
            p = int(out[v])
            if p >= 0:
                assert p != v
                assert int(out[p]) == v
                assert d[v] + d[p] <= 2.0 + 1e-9
        # The input is not mutated, previously matched pairs survive,
        # and the escape actually pairs some of the leftover spokes.
        assert np.all(out[match >= 0] == match[match >= 0])
        assert int((out >= 0).sum()) > int((match >= 0).sum())
        assert int((out >= 0).sum()) >= n - 3  # hub pair + spoke pairs

    def test_validates_inputs(self):
        g = grid_2d(3, 3)
        with pytest.raises(InvalidInputError):
            coarsen_graph(g, np.ones(g.n), target_n=0)
        with pytest.raises(InvalidInputError):
            coarsen_graph(g, np.ones(4), target_n=2)


class TestDeterminism:
    def test_same_seed_bit_identical_hierarchy(self):
        g = barabasi_albert(600, 2, weight_range=(0.5, 2.0), seed=11)
        d = np.full(g.n, 0.05)
        a = coarsen_graph(g, d, target_n=50, max_weight=1.0, rng=123)
        b = coarsen_graph(g, d, target_n=50, max_weight=1.0, rng=123)
        assert a.stats == b.stats
        assert len(a.maps) == len(b.maps)
        for ma, mb in zip(a.maps, b.maps):
            assert np.array_equal(ma, mb)
        for ga, gb in zip(a.graphs, b.graphs):
            assert ga.digest() == gb.digest()

    def test_seed_changes_tie_breaking(self):
        # The seed only enters through the tie-break priority, so seed
        # sensitivity shows on a unit-weight graph (everything ties).
        g = barabasi_albert(600, 2, seed=11)
        d = np.full(g.n, 0.05)
        a = coarsen_graph(g, d, target_n=50, rng=123)
        c = coarsen_graph(g, d, target_n=50, rng=124)
        assert len(c.maps) != len(a.maps) or any(
            not np.array_equal(mc, ma) for mc, ma in zip(c.maps, a.maps)
        )
