"""End-to-end tests of the coarsen–solve–refine front-end."""

import json

import numpy as np
import pytest

from repro.core.config import MultilevelConfig, SolverConfig
from repro.core.solver import solve_hgp
from repro.core.telemetry import RunReport
from repro.errors import InvalidInputError
from repro.graph.generators import grid_2d, random_demands
from repro.hierarchy.hierarchy import Hierarchy
from repro.multilevel import solve_multilevel


@pytest.fixture(scope="module")
def instance():
    g = grid_2d(32, 32, weight_range=(0.5, 2.0), seed=1)
    hier = Hierarchy([2, 4], [10.0, 3.0, 0.0], leaf_capacity=200.0)
    d = random_demands(g.n, hier.total_capacity, fill=0.6, skew=0.3, seed=2)
    return g, hier, d


def small_cfg(**ml_kwargs):
    ml = MultilevelConfig(enabled=True, **ml_kwargs)
    return SolverConfig(seed=0, n_trees=4, multilevel=ml)


class TestSolveMultilevel:
    def test_end_to_end_valid_placement(self, instance):
        g, hier, d = instance
        res = solve_multilevel(g, hier, d, small_cfg(coarsen_to=100))
        p = res.placement
        assert p.leaf_of.shape == (g.n,)
        assert p.meta["solver"] == "hgp_multilevel"
        assert res.levels.stats.n_coarsest <= 100
        assert res.levels.stats.levels >= 3
        assert res.cost == p.cost()
        # Refinement never worsens the projected placement, so the final
        # cost is at most the unrefined projection's.
        proj = res.levels.project(res.coarse.placement.leaf_of)
        from repro.baselines.fm import eq1_cost

        assert res.cost <= eq1_cost(g, hier, proj) + 1e-9

    def test_spans_cover_all_layers(self, instance):
        g, hier, d = instance
        res = solve_multilevel(g, hier, d, small_cfg(coarsen_to=100))
        report = res.report()
        names = [c.name for c in report.spans.children]
        assert names[:3] == ["coarsen", "coarse_solve", "uncoarsen"]
        # The engine's five stage spans nest under coarse_solve.
        solve_children = {c.name for c in report.spans.children[1].children}
        assert {"trees", "quantize", "dp", "repair", "refine"} <= solve_children
        # One level_<i> span per contraction level.
        uncoarsen = report.spans.children[2]
        level_names = {c.name for c in uncoarsen.children}
        assert level_names == {f"level_{i}" for i in range(len(res.levels.maps))}
        # Meta carries the multilevel summary; the report round-trips.
        assert report.meta["multilevel"]["coarsen"]["levels"] >= 3
        again = RunReport.from_json(report.to_json())
        assert again.meta["multilevel"] == report.meta["multilevel"]

    def test_deterministic_given_seed(self, instance):
        g, hier, d = instance
        a = solve_multilevel(g, hier, d, small_cfg(coarsen_to=100))
        b = solve_multilevel(g, hier, d, small_cfg(coarsen_to=100))
        assert np.array_equal(a.placement.leaf_of, b.placement.leaf_of)
        assert a.cost == b.cost

    def test_small_graph_skips_coarsening(self, instance):
        _, hier, _ = instance
        g = grid_2d(5, 5, seed=3)
        d = random_demands(g.n, hier.total_capacity, fill=0.5, seed=4)
        res = solve_multilevel(g, hier, d, small_cfg(coarsen_to=100))
        assert res.levels.stats.levels == 1
        assert res.levels.maps == []
        assert res.refine_stats == []

    def test_refine_passes_zero_is_pure_projection(self, instance):
        g, hier, d = instance
        res = solve_multilevel(
            g, hier, d, small_cfg(coarsen_to=100, refine_passes=0)
        )
        proj = res.levels.project(res.coarse.placement.leaf_of)
        assert np.array_equal(res.placement.leaf_of, proj)

    def test_solve_hgp_dispatch(self, instance):
        g, hier, d = instance
        res = solve_hgp(g, hier, d, small_cfg(coarsen_to=100))
        assert res.placement.meta["solver"] == "hgp_multilevel"
        direct = solve_multilevel(g, hier, d, small_cfg(coarsen_to=100))
        assert np.array_equal(res.placement.leaf_of, direct.placement.leaf_of)
        # tree_costs/dp_costs describe the coarse solve's ensemble.
        assert len(res.dp_costs) == 4

    def test_report_dir_writes_frontend_report(
        self, instance, tmp_path, monkeypatch
    ):
        g, hier, d = instance
        monkeypatch.setenv("REPRO_RUN_REPORT_DIR", str(tmp_path))
        res = solve_multilevel(g, hier, d, small_cfg(coarsen_to=100))
        files = list(tmp_path.glob("multilevel_*.json"))
        assert len(files) == 1
        payload = json.loads(files[0].read_text())
        assert payload["meta"]["run_id"] == res.run_id
        assert "multilevel" in payload["meta"]
        names = [c["name"] for c in payload["spans"]["children"]]
        assert "uncoarsen" in names

    def test_validates_instance(self, instance):
        g, hier, _ = instance
        with pytest.raises(InvalidInputError):
            solve_multilevel(g, hier, np.ones(3), small_cfg())

    def test_config_validation(self):
        with pytest.raises(InvalidInputError):
            MultilevelConfig(coarsen_to=1)
        with pytest.raises(InvalidInputError):
            MultilevelConfig(refine_passes=-1)
        with pytest.raises(InvalidInputError):
            MultilevelConfig(stall_ratio=0.0)


class TestCli:
    def test_solve_multilevel_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graph.generators import grid_2d
        from repro.graph.io import write_edgelist

        g = grid_2d(16, 16, seed=0)
        path = tmp_path / "g.edges"
        write_edgelist(path, g)
        report = tmp_path / "report.json"
        rc = main(
            [
                "solve",
                "--graph",
                str(path),
                "--degrees",
                "2,4",
                "--cm",
                "10,3,0",
                "--leaf-capacity",
                "60",
                "--multilevel",
                "--coarsen-to",
                "80",
                "--n-trees",
                "2",
                "--report",
                str(report),
                "--quiet",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cost" in out
        payload = json.loads(report.read_text())
        assert payload["path"] == "multilevel"
        assert "multilevel" in payload["meta"]
