"""Tests for the CI benchmark regression gate (tools/bench_regress.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.core.telemetry import MemberRecord, Telemetry

TOOLS = Path(__file__).resolve().parents[2] / "tools"


@pytest.fixture(scope="module")
def bench_regress():
    spec = importlib.util.spec_from_file_location(
        "bench_regress", TOOLS / "bench_regress.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def make_bench_file(tmp_path, name, points, meta=None):
    data = {"experiment": "E4", "schema_version": 1, "points": points}
    if meta is not None:
        data["meta"] = meta
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return path


def make_point(sweep="n", n=24, h=2, grid_cells=96, time_s=0.01, dp_cost=42.0):
    tel = Telemetry("bench")
    tel.add_seconds("dp", time_s * 0.8)
    tel.add_seconds("trees", time_s * 0.2)
    tel.record_member(
        MemberRecord(index=0, method="spectral", dp_cost=dp_cost)
    )
    return {
        "sweep": sweep,
        "n": n,
        "h": h,
        "grid_cells": grid_cells,
        "time_s": time_s,
        "states_max": 10,
        "merges": 100,
        "report": tel.report().to_dict(),
    }


class TestPointHelpers:
    def test_point_key(self, bench_regress):
        assert bench_regress.point_key(make_point()) == ("n", 24, 2, 96)

    def test_point_cost_from_member(self, bench_regress):
        assert bench_regress.point_cost(make_point(dp_cost=7.5)) == 7.5

    def test_pct_delta(self, bench_regress):
        assert bench_regress.pct_delta(1.0, 1.5) == pytest.approx(50.0)
        assert bench_regress.pct_delta(0.0, 0.0) == 0.0
        assert bench_regress.pct_delta(0.0, 1.0) == float("inf")


class TestGate:
    def test_identical_files_pass(self, bench_regress, tmp_path):
        base = make_bench_file(tmp_path, "base.json", [make_point()])
        rc = bench_regress.main(
            ["--baseline", str(base), "--fresh", str(base)]
        )
        assert rc == 0

    def test_cost_change_fails(self, bench_regress, tmp_path):
        base = make_bench_file(tmp_path, "base.json", [make_point(dp_cost=42.0)])
        fresh = make_bench_file(tmp_path, "fresh.json", [make_point(dp_cost=43.0)])
        rc = bench_regress.main(
            ["--baseline", str(base), "--fresh", str(fresh)]
        )
        assert rc == 1

    def test_time_regression_warns_only(self, bench_regress, tmp_path, capsys):
        base = make_bench_file(tmp_path, "base.json", [make_point(time_s=0.01)])
        fresh = make_bench_file(tmp_path, "fresh.json", [make_point(time_s=0.10)])
        rc = bench_regress.main(
            ["--baseline", str(base), "--fresh", str(fresh)]
        )
        assert rc == 0
        assert "WARN" in capsys.readouterr().out

    def test_time_fail_promotes_warning(self, bench_regress, tmp_path):
        base = make_bench_file(tmp_path, "base.json", [make_point(time_s=0.01)])
        fresh = make_bench_file(tmp_path, "fresh.json", [make_point(time_s=0.10)])
        rc = bench_regress.main(
            ["--baseline", str(base), "--fresh", str(fresh), "--time-fail"]
        )
        assert rc == 1

    def test_time_within_threshold_silent(self, bench_regress, tmp_path, capsys):
        base = make_bench_file(tmp_path, "base.json", [make_point(time_s=0.010)])
        fresh = make_bench_file(tmp_path, "fresh.json", [make_point(time_s=0.012)])
        rc = bench_regress.main(
            ["--baseline", str(base), "--fresh", str(fresh)]
        )
        assert rc == 0
        assert "WARN" not in capsys.readouterr().out

    def test_missing_point_fails(self, bench_regress, tmp_path):
        base = make_bench_file(
            tmp_path, "base.json", [make_point(n=24), make_point(n=48)]
        )
        fresh = make_bench_file(tmp_path, "fresh.json", [make_point(n=24)])
        rc = bench_regress.main(
            ["--baseline", str(base), "--fresh", str(fresh)]
        )
        assert rc == 1

    def test_extra_point_fails(self, bench_regress, tmp_path):
        base = make_bench_file(tmp_path, "base.json", [make_point(n=24)])
        fresh = make_bench_file(
            tmp_path, "fresh.json", [make_point(n=24), make_point(n=48)]
        )
        rc = bench_regress.main(
            ["--baseline", str(base), "--fresh", str(fresh)]
        )
        assert rc == 1

    def test_cost_tol_allows_drift(self, bench_regress, tmp_path):
        base = make_bench_file(tmp_path, "base.json", [make_point(dp_cost=100.0)])
        fresh = make_bench_file(tmp_path, "fresh.json", [make_point(dp_cost=100.5)])
        rc = bench_regress.main(
            ["--baseline", str(base), "--fresh", str(fresh), "--cost-tol", "1"]
        )
        assert rc == 0

    def test_missing_file_fails(self, bench_regress, tmp_path, capsys):
        base = make_bench_file(tmp_path, "base.json", [make_point()])
        rc = bench_regress.main(
            ["--baseline", str(base), "--fresh", str(tmp_path / "nope.json")]
        )
        assert rc == 1
        assert "not found" in capsys.readouterr().err

class TestMetaFloors:
    def test_parse_min_meta(self, bench_regress):
        assert bench_regress.parse_min_meta("hit_rate=0.5") == ("hit_rate", 0.5)
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            bench_regress.parse_min_meta("hit_rate")
        with pytest.raises(argparse.ArgumentTypeError):
            bench_regress.parse_min_meta("hit_rate=lots")

    def test_meta_floor_passes(self, bench_regress, tmp_path):
        base = make_bench_file(
            tmp_path, "base.json", [make_point()], meta={"warm_speedup": 5.0}
        )
        rc = bench_regress.main(
            [
                "--baseline",
                str(base),
                "--fresh",
                str(base),
                "--min-meta",
                "warm_speedup=2.0",
            ]
        )
        assert rc == 0

    def test_meta_below_floor_fails(self, bench_regress, tmp_path, capsys):
        base = make_bench_file(
            tmp_path, "base.json", [make_point()], meta={"hit_rate": 0.0}
        )
        rc = bench_regress.main(
            ["--baseline", str(base), "--fresh", str(base), "--min-meta", "hit_rate=0.5"]
        )
        assert rc == 1
        assert "below required floor" in capsys.readouterr().err

    def test_missing_meta_key_fails(self, bench_regress, tmp_path, capsys):
        base = make_bench_file(tmp_path, "base.json", [make_point()])
        rc = bench_regress.main(
            ["--baseline", str(base), "--fresh", str(base), "--min-meta", "nope=1"]
        )
        assert rc == 1
        assert "missing" in capsys.readouterr().err

    def test_floor_checked_on_fresh_file_only(self, bench_regress, tmp_path):
        base = make_bench_file(tmp_path, "base.json", [make_point()])
        fresh = make_bench_file(
            tmp_path, "fresh.json", [make_point()], meta={"hit_rate": 0.9}
        )
        rc = bench_regress.main(
            [
                "--baseline",
                str(base),
                "--fresh",
                str(fresh),
                "--min-meta",
                "hit_rate=0.5",
            ]
        )
        assert rc == 0


class TestCheckedInBaselines:
    def test_checked_in_baseline_self_compares_clean(self, bench_regress):
        baseline = (
            Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "results"
            / "BENCH_E4_runtime_scaling.json"
        )
        rc = bench_regress.main(
            ["--baseline", str(baseline), "--fresh", str(baseline)]
        )
        assert rc == 0

    def test_checked_in_e17_baseline_meets_cache_floors(self, bench_regress):
        baseline = (
            Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "results"
            / "BENCH_E17_cache_warm.json"
        )
        rc = bench_regress.main(
            [
                "--baseline",
                str(baseline),
                "--fresh",
                str(baseline),
                "--min-meta",
                "hit_rate=0.5",
                "--min-meta",
                "warm_speedup=2.0",
            ]
        )
        assert rc == 0


class TestMetricsDump:
    def _dump(self, tmp_path, families):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        for name, value in families:
            registry.counter(name).inc(value)
        path = tmp_path / "metrics.json"
        path.write_text(
            json.dumps(
                {"snapshot": registry.snapshot(), "rendered": registry.render()}
            )
        )
        return path

    def _argv(self, tmp_path, dump_path):
        base = make_bench_file(tmp_path, "base.json", [make_point()])
        fresh = make_bench_file(tmp_path, "fresh.json", [make_point()])
        return [
            "--baseline", str(base),
            "--fresh", str(fresh),
            "--metrics-dump", str(dump_path),
        ]

    def test_valid_dump_passes_and_summarises(
        self, bench_regress, tmp_path, capsys
    ):
        dump = self._dump(tmp_path, [("repro_dp_solves_total", 12)])
        rc = bench_regress.main(self._argv(tmp_path, dump))
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 repro_* families" in out
        assert "repro_dp_solves_total 12" in out

    def test_missing_dump_fails(self, bench_regress, tmp_path, capsys):
        rc = bench_regress.main(self._argv(tmp_path, tmp_path / "nope.json"))
        assert rc == 1
        assert "metrics dump not found" in capsys.readouterr().err

    def test_dump_without_repro_families_fails(
        self, bench_regress, tmp_path, capsys
    ):
        dump = self._dump(tmp_path, [("other_total", 1)])
        rc = bench_regress.main(self._argv(tmp_path, dump))
        assert rc == 1
        assert "no repro_* families" in capsys.readouterr().err

    def test_corrupt_dump_fails(self, bench_regress, tmp_path, capsys):
        dump = tmp_path / "metrics.json"
        dump.write_text("{not json")
        rc = bench_regress.main(self._argv(tmp_path, dump))
        assert rc == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_conftest_dump_shape_is_accepted(self, bench_regress, tmp_path):
        """The dump written by benchmarks/conftest.py round-trips into
        the gate: same {"snapshot", "rendered"} shape."""
        from repro.obs.metrics import get_registry

        get_registry().counter("repro_dp_solves_total", "x").inc(0)
        registry = get_registry()
        path = tmp_path / "session.json"
        path.write_text(
            json.dumps(
                {"snapshot": registry.snapshot(), "rendered": registry.render()}
            )
        )
        failures, summary = bench_regress.check_metrics_dump(path)
        assert failures == []
        assert summary
