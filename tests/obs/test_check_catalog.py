"""Tests for tools/check_metric_catalog.py (catalog drift gate)."""

import importlib.util
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parents[2] / "tools"


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location(
        "check_metric_catalog", TOOLS / "check_metric_catalog.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _source_tree(tmp_path, registrations):
    src = tmp_path / "src"
    src.mkdir()
    body = "\n".join(
        f'registry.{kind}(\n    "{name}", "help text."\n)'
        for kind, name in registrations
    )
    (src / "mod.py").write_text(body + "\n")
    return src


def _catalog(tmp_path, names):
    doc = tmp_path / "observability.md"
    rows = "\n".join(f"| `{n}` | counter | mod.py | something |" for n in names)
    doc.write_text(
        "# Obs\n\n### Catalog\n\n| metric | kind | where | meaning |\n"
        "| --- | --- | --- | --- |\n" + rows + "\n"
    )
    return doc


class TestScanners:
    def test_finds_multiline_registrations(self, checker, tmp_path):
        src = _source_tree(
            tmp_path,
            [
                ("counter", "repro_a_total"),
                ("gauge", "repro_b"),
                ("histogram", "repro_c_seconds"),
            ],
        )
        found = checker.registered_metrics(src)
        assert set(found) == {"repro_a_total", "repro_b", "repro_c_seconds"}
        assert found["repro_a_total"]  # carries the registering file

    def test_catalog_rows_with_and_without_labels(self, checker, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "| `repro_plain_total` | counter | x | y |\n"
            "| `repro_labelled_total{kind,tier}` | counter | x | y |\n"
            "not a table line with `repro_red_herring_total` mention\n"
        )
        assert checker.catalogued_metrics(doc) == {
            "repro_plain_total",
            "repro_labelled_total",
        }


class TestGate:
    def test_in_sync_passes(self, checker, tmp_path):
        src = _source_tree(tmp_path, [("counter", "repro_x_total")])
        doc = _catalog(tmp_path, ["repro_x_total"])
        assert checker.main(["--source", str(src), "--catalog", str(doc)]) == 0

    def test_unregistered_row_fails(self, checker, tmp_path, capsys):
        src = _source_tree(tmp_path, [("counter", "repro_x_total")])
        doc = _catalog(tmp_path, ["repro_x_total", "repro_gone_total"])
        rc = checker.main(["--source", str(src), "--catalog", str(doc)])
        assert rc == 1
        assert "repro_gone_total" in capsys.readouterr().err

    def test_uncatalogued_metric_fails(self, checker, tmp_path, capsys):
        src = _source_tree(
            tmp_path,
            [("counter", "repro_x_total"), ("gauge", "repro_new_gauge")],
        )
        doc = _catalog(tmp_path, ["repro_x_total"])
        rc = checker.main(["--source", str(src), "--catalog", str(doc)])
        assert rc == 1
        err = capsys.readouterr().err
        assert "repro_new_gauge" in err
        assert "no catalog row" in err


class TestRealRepo:
    def test_checked_in_catalog_is_in_sync(self, checker):
        """The gate CI runs: source registrations match docs rows."""
        assert checker.main([]) == 0
