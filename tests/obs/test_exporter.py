"""Embedded /metrics exporter: live scrapes over a real HTTP socket."""

from __future__ import annotations

import urllib.error
import urllib.request

import pytest

from repro.obs.exporter import MetricsExporter, maybe_start_from_env, start_exporter
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    reg.counter("test_total", "A test counter").inc(7)
    return reg


@pytest.fixture
def exporter(registry):
    with MetricsExporter(port=0, registry=registry) as exp:
        yield exp


def _get(url: str, timeout: float = 5.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, dict(resp.headers), resp.read().decode()


class TestEndpoints:
    def test_metrics_renders_registry(self, exporter):
        status, headers, body = _get(exporter.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        assert "# TYPE test_total counter" in body
        assert "test_total 7" in body

    def test_metrics_reflects_live_updates(self, exporter, registry):
        registry.counter("test_total").inc(3)
        _status, _headers, body = _get(exporter.url + "/metrics")
        assert "test_total 10" in body

    def test_healthz(self, exporter):
        status, _headers, body = _get(exporter.url + "/healthz")
        assert status == 200
        assert body == "ok\n"

    def test_unknown_route_404(self, exporter):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(exporter.url + "/nope")
        assert exc.value.code == 404

    def test_debug_profile_returns_collapsed_text(self, exporter):
        status, headers, body = _get(
            exporter.url + "/debug/profile?seconds=0.2&hz=50", timeout=10.0
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        # Idle process: possibly no non-infra samples at all, but any
        # line present must be collapsed-stack formatted.
        for line in body.splitlines():
            frames, _, count = line.rpartition(" ")
            assert frames.startswith("span:")
            assert int(count) > 0

    def test_debug_profile_bad_params_clamped(self, exporter):
        status, _headers, _body = _get(
            exporter.url + "/debug/profile?seconds=bogus&hz=-5", timeout=10.0
        )
        assert status == 200  # falls back to safe defaults/clamps

    def test_scrapes_counter(self, exporter, registry):
        _get(exporter.url + "/metrics")
        _get(exporter.url + "/metrics")
        _get(exporter.url + "/healthz")
        scrapes = registry.get("repro_exporter_scrapes_total")
        assert scrapes is not None
        assert scrapes.value(endpoint="metrics") >= 2
        assert scrapes.value(endpoint="healthz") >= 1


class TestLifecycle:
    def test_port_zero_assigns_real_port(self, registry):
        exp = start_exporter(port=0, registry=registry)
        try:
            assert exp.port > 0
            assert exp.url == f"http://127.0.0.1:{exp.port}"
        finally:
            exp.stop()

    def test_stop_idempotent_and_closes_socket(self, registry):
        exp = start_exporter(port=0, registry=registry)
        url = exp.url
        exp.stop()
        exp.stop()
        with pytest.raises(urllib.error.URLError):
            _get(url + "/healthz", timeout=0.5)

    def test_two_exporters_coexist(self, registry):
        with MetricsExporter(port=0, registry=registry) as a:
            with MetricsExporter(port=0, registry=registry) as b:
                assert a.port != b.port
                for exp in (a, b):
                    status, _h, _b = _get(exp.url + "/healthz")
                    assert status == 200

    def test_thread_name_marks_infra(self, registry):
        """The serving thread must be named repro-* so the sampling
        profiler skips it (see SamplingProfiler._sample_once)."""
        import threading

        with MetricsExporter(port=0, registry=registry) as exp:
            names = [t.name for t in threading.enumerate()]
            assert any(
                n.startswith("repro-exporter") for n in names
            ), names
            assert exp.url  # keep the exporter alive for the check


class TestEnvActivation:
    def test_unset_returns_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_METRICS_PORT", raising=False)
        assert maybe_start_from_env() is None

    def test_unparsable_returns_none(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS_PORT", "not-a-port")
        assert maybe_start_from_env() is None

    def test_set_starts_exporter(self, monkeypatch, registry):
        monkeypatch.setenv("REPRO_METRICS_PORT", "0")
        exp = maybe_start_from_env(registry=registry)
        try:
            assert exp is not None
            status, _h, body = _get(exp.url + "/metrics")
            assert status == 200
            assert "test_total" in body
        finally:
            if exp is not None:
                exp.stop()


class TestLiveSolveScrape:
    def test_scrape_during_solve_includes_worker_counters(
        self, clustered_instance
    ):
        """Acceptance criterion: a /metrics scrape after a parallel solve
        exposes worker-merged repro_dp_* totals in valid exposition."""
        from repro.core.config import SolverConfig
        from repro.core.engine import run_pipeline
        from repro.obs.metrics import get_registry

        g, h, d = clustered_instance
        with MetricsExporter(port=0, registry=get_registry()) as exp:
            run_pipeline(
                g, h, d,
                SolverConfig(n_trees=4, n_jobs=2, refine=False, seed=7),
                path="exporter-test",
            )
            _status, headers, body = _get(exp.url + "/metrics")
        assert headers["Content-Type"].startswith("text/plain")
        assert "# TYPE repro_dp_solves_total counter" in body
        solves = [
            ln for ln in body.splitlines()
            if ln.startswith("repro_dp_solves_total")
        ]
        assert solves and float(solves[0].rpartition(" ")[2]) >= 4
        assert "repro_metrics_worker_merges_total" in body
