"""Tests for structured logging and correlation-id propagation."""

import json
import os

import numpy as np
import pytest

from repro.core.config import SolverConfig
from repro.core.engine import run_pipeline
from repro.obs.logging import (
    LEVELS,
    NULL_LOGGER,
    ListSink,
    StructuredLogger,
    human_sink,
    jsonl_sink,
    new_run_id,
)


class TestRunId:
    def test_format(self):
        rid = new_run_id()
        assert len(rid) == 12
        int(rid, 16)  # hex

    def test_unique(self):
        assert new_run_id() != new_run_id()


class TestStructuredLogger:
    def test_records_carry_required_fields(self):
        sink = ListSink()
        logger = StructuredLogger([sink], run_id="abc123")
        logger.info("hello", n=3)
        (rec,) = sink.records
        assert rec["event"] == "hello"
        assert rec["level"] == "info"
        assert rec["run_id"] == "abc123"
        assert rec["n"] == 3
        assert rec["ts"] > 0

    def test_min_level_filters(self):
        sink = ListSink()
        logger = StructuredLogger([sink], min_level="warning")
        logger.debug("quiet")
        logger.info("quiet")
        logger.warning("loud")
        assert [r["event"] for r in sink.records] == ["loud"]
        assert "warning" in LEVELS

    def test_bind_layers_fields(self):
        sink = ListSink()
        logger = StructuredLogger([sink], run_id="one").bind(stage="dp")
        logger.info("x")
        assert sink.records[0]["run_id"] == "one"
        assert sink.records[0]["stage"] == "dp"

    def test_null_logger_disabled(self):
        assert not NULL_LOGGER.enabled
        NULL_LOGGER.info("goes nowhere")  # must not raise

    def test_emit_replays_verbatim(self):
        sink = ListSink()
        logger = StructuredLogger([sink])
        record = {"ts": 1.0, "level": "debug", "event": "e", "run_id": "w0rker"}
        logger.emit(record)
        assert sink.records == [record]


class TestSinks:
    def test_jsonl_sink_writes_parseable_lines(self, tmp_path):
        target = tmp_path / "log.jsonl"
        logger = StructuredLogger([jsonl_sink(target)], run_id="deadbeef0000")
        logger.info("one", a=1)
        logger.info("two", b=[1, 2])
        lines = target.read_text().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["event"] == "one"
        assert parsed[1]["b"] == [1, 2]
        assert all(p["run_id"] == "deadbeef0000" for p in parsed)

    def test_human_sink_renders_terse_lines(self):
        import io

        buf = io.StringIO()
        logger = StructuredLogger([human_sink(buf)])
        logger.info("solve_done", cost=5)
        out = buf.getvalue()
        assert "solve_done" in out
        assert "cost=5" in out


class TestEnginePropagation:
    @pytest.fixture
    def instance(self, clustered_instance):
        return clustered_instance

    def test_run_id_on_every_record_serial(self, instance):
        g, hier, d = instance
        sink = ListSink()
        result = run_pipeline(
            g,
            hier,
            d,
            SolverConfig(n_trees=2, refine=False, seed=0),
            logger=StructuredLogger([sink], min_level="debug"),
        )
        assert result.run_id
        events = [r["event"] for r in sink.records]
        assert events[0] == "run_start"
        assert events[-1] == "run_done"
        assert events.count("member_solved") == 2
        assert {r["run_id"] for r in sink.records} == {result.run_id}
        assert result.report().meta["run_id"] == result.run_id

    def test_run_id_survives_pool_workers(self, instance):
        """Worker-side records are replayed parent-side with the same run_id."""
        g, hier, d = instance
        sink = ListSink()
        result = run_pipeline(
            g,
            hier,
            d,
            SolverConfig(n_trees=2, refine=False, seed=0, n_jobs=2),
            logger=StructuredLogger([sink], min_level="debug"),
        )
        members = [r for r in sink.records if r["event"] == "member_solved"]
        assert len(members) == 2
        assert {r["run_id"] for r in members} == {result.run_id}
        # The records were produced in the worker processes.
        assert all(r["pid"] != os.getpid() for r in members)

    def test_silent_without_logger(self, instance):
        g, hier, d = instance
        result = run_pipeline(
            g, hier, d, SolverConfig(n_trees=2, refine=False, seed=0)
        )
        assert result.run_id  # ids are generated even when nothing listens

    def test_distinct_runs_get_distinct_ids(self, instance):
        g, hier, d = instance
        cfg = SolverConfig(n_trees=2, refine=False, seed=0)
        a = run_pipeline(g, hier, d, cfg)
        b = run_pipeline(g, hier, d, cfg)
        assert a.run_id != b.run_id
        assert np.isclose(a.placement.cost(), b.placement.cost())
