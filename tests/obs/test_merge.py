"""Cross-process metric aggregation: snapshot, delta, merge, quantile.

The tentpole regression here is :class:`TestParallelRunAggregation` —
before the delta-merge path existed, a pool run (``n_jobs > 1``) left
``repro_dp_solves_total`` flat in the parent registry because the
increments happened in worker processes and died with them.
"""

from __future__ import annotations

import json
import math
import pickle

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    get_registry,
    snapshot_delta,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestSnapshot:
    def test_snapshot_shape(self, registry):
        registry.counter("c_total", "help").inc(3)
        registry.gauge("g", "").set(7)
        registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        snap = registry.snapshot()
        assert isinstance(snap["pid"], int)
        by_name = {f["name"]: f for f in snap["families"]}
        assert by_name["c_total"]["kind"] == "counter"
        assert by_name["c_total"]["series"][0][1] == pytest.approx(3.0)
        assert by_name["g"]["series"][0][1] == pytest.approx(7.0)
        hist = by_name["h"]
        assert hist["buckets"] == [1.0, 2.0]
        value = hist["series"][0][1]
        # Raw per-bucket counts, not cumulative: (<=1, <=2, +Inf).
        assert value["bucket_counts"] == [0, 1, 0]
        assert value["count"] == 1
        assert value["sum"] == pytest.approx(1.5)

    def test_snapshot_is_picklable_and_json_safe(self, registry):
        registry.counter("c_total", labelnames=("path",)).inc(2, path="batch")
        registry.histogram("h").observe(0.1)
        snap = registry.snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap
        assert json.loads(json.dumps(snap)) == snap

    def test_labelled_series_keys_survive(self, registry):
        registry.counter("c_total", labelnames=("kind",)).inc(1, kind="x")
        snap = registry.snapshot()
        (key, value), = snap["families"][0]["series"]
        assert key == [["kind", "x"]]
        assert value == pytest.approx(1.0)


class TestSnapshotDelta:
    def test_counter_diff_only_positive(self, registry):
        c = registry.counter("c_total")
        c.inc(5)
        base = registry.snapshot()
        c.inc(3)
        delta = snapshot_delta(registry.snapshot(), base)
        assert delta["families"][0]["series"][0][1] == pytest.approx(3.0)

    def test_inactive_series_dropped(self, registry):
        registry.counter("quiet_total").inc(5)
        registry.gauge("quiet_gauge").set(1)
        registry.histogram("quiet_hist").observe(0.5)
        base = registry.snapshot()
        delta = snapshot_delta(registry.snapshot(), base)
        assert delta["families"] == []

    def test_gauge_ships_new_value_when_changed(self, registry):
        g = registry.gauge("g")
        g.set(4)
        base = registry.snapshot()
        g.set(9)
        delta = snapshot_delta(registry.snapshot(), base)
        # Last-write semantics: the delta carries the new value itself.
        assert delta["families"][0]["series"][0][1] == pytest.approx(9.0)

    def test_histogram_raw_bucket_diffs(self, registry):
        h = registry.histogram("h", buckets=(1.0, 2.0))
        h.observe(0.5)
        base = registry.snapshot()
        h.observe(1.5)
        h.observe(100.0)
        delta = snapshot_delta(registry.snapshot(), base)
        value = delta["families"][0]["series"][0][1]
        assert value["bucket_counts"] == [0, 1, 1]
        assert value["count"] == 2
        assert value["sum"] == pytest.approx(101.5)

    def test_new_series_diffed_from_zero(self, registry):
        base = registry.snapshot()
        registry.counter("fresh_total").inc(2)
        delta = snapshot_delta(registry.snapshot(), base)
        assert delta["families"][0]["name"] == "fresh_total"
        assert delta["families"][0]["series"][0][1] == pytest.approx(2.0)

    def test_delta_preserves_buckets_and_help(self, registry):
        base = registry.snapshot()
        registry.histogram("h", "Help!", buckets=(1.0, 4.0)).observe(2.0)
        delta = snapshot_delta(registry.snapshot(), base)
        fam = delta["families"][0]
        assert fam["buckets"] == [1.0, 4.0]
        assert fam["help"] == "Help!"


class TestMergeSnapshot:
    def _delta_from(self, build) -> dict:
        """Run ``build`` against a scratch registry, return its delta."""
        worker = MetricsRegistry()
        base = worker.snapshot()
        build(worker)
        return snapshot_delta(worker.snapshot(), base)

    def test_counters_sum(self, registry):
        registry.counter("c_total", "parent help").inc(10)
        delta = self._delta_from(lambda w: w.counter("c_total").inc(4))
        merged = registry.merge_snapshot(delta)
        assert merged == 1
        assert registry.get("c_total").value() == pytest.approx(14.0)

    def test_gauges_last_write(self, registry):
        registry.gauge("g").set(1)
        delta = self._delta_from(lambda w: w.gauge("g").set(42))
        registry.merge_snapshot(delta)
        assert registry.get("g").value() == pytest.approx(42.0)

    def test_histograms_add_bucketwise(self, registry):
        registry.histogram("h", buckets=(1.0, 2.0)).observe(0.5)

        def build(w):
            h = w.histogram("h", buckets=(1.0, 2.0))
            h.observe(1.5)
            h.observe(50.0)

        registry.merge_snapshot(self._delta_from(build))
        snap = registry.get("h").snapshot()
        assert snap["count"] == 3
        assert snap["buckets"][1.0] == 1
        assert snap["buckets"][2.0] == 2
        assert snap["buckets"][math.inf] == 3
        assert snap["sum"] == pytest.approx(52.0)

    def test_unknown_family_created_on_the_fly(self, registry):
        delta = self._delta_from(
            lambda w: w.counter("only_in_worker_total", "from worker").inc(1)
        )
        registry.merge_snapshot(delta)
        fam = registry.get("only_in_worker_total")
        assert fam is not None
        assert fam.help == "from worker"
        assert fam.value() == pytest.approx(1.0)

    def test_bucket_layout_mismatch_skipped(self, registry):
        registry.histogram("h", buckets=(1.0, 2.0, 3.0)).observe(0.5)
        delta = self._delta_from(
            lambda w: w.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        )
        merged = registry.merge_snapshot(delta)
        assert merged == 0
        assert registry.get("h").snapshot()["count"] == 1  # unchanged

    def test_process_label_keeps_workers_apart(self, registry):
        d1 = self._delta_from(lambda w: w.counter("c_total").inc(2))
        d2 = self._delta_from(lambda w: w.counter("c_total").inc(5))
        registry.merge_snapshot(d1, process="101")
        registry.merge_snapshot(d2, process="202")
        text = registry.render()
        assert 'c_total{process="101"} 2' in text
        assert 'c_total{process="202"} 5' in text

    def test_merge_twice_double_counts_by_design(self, registry):
        """Counters sum on every merge: callers must merge a delta once."""
        delta = self._delta_from(lambda w: w.counter("c_total").inc(3))
        registry.merge_snapshot(delta)
        registry.merge_snapshot(delta)
        assert registry.get("c_total").value() == pytest.approx(6.0)

    def test_labelled_series_merge_into_right_child(self, registry):
        registry.counter("c_total", labelnames=("kind",)).inc(1, kind="a")

        def build(w):
            c = w.counter("c_total", labelnames=("kind",))
            c.inc(2, kind="a")
            c.inc(7, kind="b")

        registry.merge_snapshot(self._delta_from(build))
        fam = registry.get("c_total")
        assert fam.value(kind="a") == pytest.approx(3.0)
        assert fam.value(kind="b") == pytest.approx(7.0)


class TestHistogramQuantile:
    def test_empty_series_is_nan(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        assert math.isnan(h.quantile(0.5))

    def test_out_of_range_rejected(self):
        h = Histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)

    def test_interpolates_within_bucket(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for _ in range(4):
            h.observe(1.5)  # all mass in the (1, 2] bucket
        # rank = 0.5 * 4 = 2 -> halfway through the bucket's 4 counts.
        assert h.quantile(0.5) == pytest.approx(1.5)
        assert h.quantile(1.0) == pytest.approx(2.0)

    def test_first_bucket_interpolates_from_zero(self):
        h = Histogram("h", buckets=(2.0, 4.0))
        h.observe(1.0)
        h.observe(1.0)
        assert h.quantile(0.5) == pytest.approx(1.0)

    def test_overflow_clamps_to_last_edge(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(100.0)
        assert h.quantile(0.99) == pytest.approx(2.0)

    def test_matches_prometheus_shape_on_default_buckets(self):
        h = Histogram("h", buckets=DEFAULT_LATENCY_BUCKETS)
        for v in (0.001, 0.002, 0.003, 0.2, 0.21):
            h.observe(v)
        p50 = h.quantile(0.5)
        assert 0.0025 < p50 <= 0.005  # rank 2.5 lands in the (0.0025, 0.005] bucket
        assert h.quantile(0.99) <= 0.25

    def test_labelled_quantile(self):
        h = Histogram("h", labelnames=("kind",), buckets=(1.0, 2.0))
        h.observe(1.5, kind="x")
        assert h.quantile(0.5, kind="x") == pytest.approx(1.5)
        assert math.isnan(h.quantile(0.5, kind="y"))


class TestParallelRunAggregation:
    """The acceptance-critical regression: pool workers' counters must
    reach the parent registry.  Before the delta-merge path these
    asserts failed — worker-side ``repro_dp_solves_total`` increments
    died with the worker process."""

    def _run(self, clustered_instance, n_jobs, monkeypatch=None, **cfg_kw):
        from repro.core.config import SolverConfig
        from repro.core.engine import run_pipeline

        g, h, d = clustered_instance
        cfg = SolverConfig(n_trees=4, n_jobs=n_jobs, refine=False, seed=3, **cfg_kw)
        return run_pipeline(g, h, d, cfg, path=f"merge-test-{n_jobs}")

    def test_parallel_run_increases_parent_dp_total(self, clustered_instance):
        reg = get_registry()
        before = _value(reg, "repro_dp_solves_total")
        before_merges = _value(reg, "repro_metrics_worker_merges_total")
        result = self._run(clustered_instance, n_jobs=2)
        assert result.placement is not None
        # Every ensemble member solved in a worker must land here: at
        # least n_trees new DP solves, merged from >= 1 worker delta.
        assert _value(reg, "repro_dp_solves_total") >= before + 4
        assert _value(reg, "repro_metrics_worker_merges_total") >= before_merges + 4

    def test_serial_and_parallel_totals_agree(self, clustered_instance):
        reg = get_registry()
        before = _value(reg, "repro_dp_solves_total")
        self._run(clustered_instance, n_jobs=1)
        serial_added = _value(reg, "repro_dp_solves_total") - before
        before = _value(reg, "repro_dp_solves_total")
        self._run(clustered_instance, n_jobs=2)
        parallel_added = _value(reg, "repro_dp_solves_total") - before
        assert serial_added == pytest.approx(parallel_added)

    def test_process_label_env_flag(self, clustered_instance, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS_PROCESS_LABEL", "1")
        reg = get_registry()
        self._run(clustered_instance, n_jobs=2)
        fam = reg.get("repro_dp_solves_total")
        labelled = [
            key
            for key, _ in fam._series()
            if any(k == "process" for k, _v in key)
        ]
        assert labelled, "expected per-process dp series under the env flag"

    def test_serial_records_carry_no_delta(self, clustered_instance):
        """Serial solves increment the parent directly; a delta on top
        would double-count when the engine merges it."""
        result = self._run(clustered_instance, n_jobs=1)
        records = result.report().members
        assert records
        for record in records:
            assert record.metrics_delta is None


def _value(registry, name, **labels):
    family = registry.get(name)
    if family is None:
        return 0.0
    return family.value(**labels)
