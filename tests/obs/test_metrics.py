"""Tests for the process-local metrics registry."""

import math

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_accumulates(self, registry):
        c = registry.counter("x_total", "help")
        c.inc()
        c.inc(4)
        assert c.value() == pytest.approx(5.0)

    def test_negative_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("x_total").inc(-1)

    def test_labelled_series_independent(self, registry):
        c = registry.counter("runs_total", "", labelnames=("path",))
        c.inc(path="batch")
        c.inc(2, path="streaming")
        assert c.value(path="batch") == pytest.approx(1.0)
        assert c.value(path="streaming") == pytest.approx(2.0)

    def test_wrong_labels_rejected(self, registry):
        c = registry.counter("runs_total", "", labelnames=("path",))
        with pytest.raises(ValueError):
            c.inc(nope="x")


class TestGauge:
    def test_set_and_inc(self, registry):
        g = registry.gauge("live")
        g.set(7)
        g.inc(-3)
        assert g.value() == pytest.approx(4.0)


class TestHistogramBuckets:
    def test_le_semantics_on_exact_edge(self, registry):
        """A value equal to an edge lands in that edge's bucket."""
        h = registry.histogram("lat", buckets=(1.0, 2.0, 4.0))
        h.observe(2.0)
        snap = h.snapshot()
        assert snap["buckets"][1.0] == 0
        assert snap["buckets"][2.0] == 1  # le="2" includes 2.0
        assert snap["buckets"][4.0] == 1

    def test_overflow_lands_in_inf(self, registry):
        h = registry.histogram("lat", buckets=(1.0, 2.0))
        h.observe(100.0)
        snap = h.snapshot()
        assert snap["buckets"][1.0] == 0
        assert snap["buckets"][2.0] == 0
        assert snap["buckets"][math.inf] == 1
        assert snap["count"] == 1
        assert snap["sum"] == pytest.approx(100.0)

    def test_cumulative_counts_monotone(self, registry):
        h = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        snap = h.snapshot()
        cum = [snap["buckets"][e] for e in (0.1, 1.0, 10.0, math.inf)]
        assert cum == [1, 3, 4, 5]
        assert cum == sorted(cum)

    def test_edges_sorted_and_deduped(self, registry):
        h = registry.histogram("s", buckets=(4.0, 1.0, 2.0))
        assert h.buckets == (1.0, 2.0, 4.0)
        with pytest.raises(ValueError):
            registry.histogram("dup", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("empty", buckets=())

    def test_default_edge_presets_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
        assert list(DEFAULT_SIZE_BUCKETS) == sorted(DEFAULT_SIZE_BUCKETS)


class TestRegistry:
    def test_idempotent_registration(self, registry):
        a = registry.counter("x_total", "first help")
        b = registry.counter("x_total", "ignored second help")
        assert a is b

    def test_kind_conflict_raises(self, registry):
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_reset_drops_families(self, registry):
        registry.counter("x_total").inc()
        registry.reset()
        assert registry.get("x_total") is None

    def test_default_registry_is_a_singleton(self):
        assert get_registry() is get_registry()
        assert isinstance(get_registry(), MetricsRegistry)


class TestExposition:
    def test_prometheus_text_format(self, registry):
        registry.counter("runs_total", "Completed runs", labelnames=("path",)).inc(
            3, path="batch"
        )
        registry.gauge("live", "Live tasks").set(2)
        registry.histogram("lat", "Latency", buckets=(0.5, 1.0)).observe(0.75)
        text = registry.render()
        assert "# HELP runs_total Completed runs" in text
        assert "# TYPE runs_total counter" in text
        assert 'runs_total{path="batch"} 3' in text
        assert "# TYPE live gauge" in text
        assert "live 2" in text
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="0.5"} 0' in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 0.75" in text
        assert "lat_count 1" in text
        assert text.endswith("\n")

    def test_families_sorted_by_name(self, registry):
        registry.counter("z_total")
        registry.counter("a_total")
        assert [f.name for f in registry.families()] == ["a_total", "z_total"]

    def test_empty_registry_renders_empty(self, registry):
        assert registry.render() == ""


class TestHotPathPublication:
    def test_dp_solve_publishes(self, path3, hier_2x4):
        """A pipeline run bumps the DP/engine counters in the default registry."""
        import numpy as np

        from repro.core.config import SolverConfig
        from repro.core.engine import run_pipeline

        reg = get_registry()
        before_runs = _counter_value(reg, "repro_engine_runs_total", path="metrics-test")
        before_solves = _counter_value(reg, "repro_dp_solves_total")
        run_pipeline(
            path3,
            hier_2x4,
            np.asarray([0.2, 0.2, 0.2]),
            SolverConfig(n_trees=2, refine=False, seed=0),
            path="metrics-test",
        )
        assert (
            _counter_value(reg, "repro_engine_runs_total", path="metrics-test")
            == before_runs + 1
        )
        assert _counter_value(reg, "repro_dp_solves_total") >= before_solves + 2


def _counter_value(registry, name, **labels):
    family = registry.get(name)
    if family is None:
        return 0.0
    return family.value(**labels)
