"""Continuous profiler: sampler, span attribution, stage resources.

Sampling tests spin a busy loop on the main thread and assert the
profiler catches it attributed to the surrounding telemetry span — the
same mechanism that puts ``span:dp`` roots in real flamegraphs.
"""

from __future__ import annotations

import json
import math
import threading
import time

import numpy as np
import pytest

from repro.core.telemetry import RunReport, Telemetry, active_spans, mark_active
from repro.errors import InvalidInputError
from repro.obs.profile import (
    ProfileConfig,
    ProfileSession,
    SamplingProfiler,
    StageResourceMonitor,
    rss_bytes,
)


def _busy(seconds: float) -> float:
    """Burn CPU on the calling thread for roughly ``seconds``."""
    deadline = time.perf_counter() + seconds
    acc = 0.0
    while time.perf_counter() < deadline:
        acc += math.sqrt(acc + 1.0)
    return acc


class TestProfileConfig:
    def test_defaults(self):
        cfg = ProfileConfig()
        assert not cfg.enabled
        assert cfg.hz == pytest.approx(97.0)
        assert not cfg.memory
        assert cfg.path is None

    def test_hz_bounds(self):
        ProfileConfig(hz=0.1)
        ProfileConfig(hz=10_000)
        with pytest.raises(InvalidInputError):
            ProfileConfig(hz=0.0)
        with pytest.raises(InvalidInputError):
            ProfileConfig(hz=20_000)


class TestActiveSpans:
    def test_telemetry_span_maintains_stack(self):
        tel = Telemetry("t")
        ident = threading.get_ident()
        assert ident not in active_spans()
        with tel.span("outer"):
            assert active_spans()[ident] == "outer"
            with tel.span("inner"):
                assert active_spans()[ident] == "inner"
            assert active_spans()[ident] == "outer"
        assert ident not in active_spans()

    def test_mark_active_without_span_node(self):
        ident = threading.get_ident()
        with mark_active("dp"):
            assert active_spans()[ident] == "dp"
        assert ident not in active_spans()

    def test_mark_active_pops_on_exception(self):
        ident = threading.get_ident()
        with pytest.raises(RuntimeError):
            with mark_active("dp"):
                raise RuntimeError("boom")
        assert ident not in active_spans()

    def test_threads_are_independent(self):
        seen = {}

        def worker():
            with mark_active("worker-span"):
                seen["worker"] = active_spans().get(threading.get_ident())

        with mark_active("main-span"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
            assert active_spans()[threading.get_ident()] == "main-span"
        assert seen["worker"] == "worker-span"


class TestSamplingProfiler:
    def test_collects_samples_with_span_attribution(self):
        # Sampling is timing-sensitive; under a loaded CI box the sampler
        # thread can be starved, so retry with longer busy windows before
        # declaring the attribution broken.
        for busy_seconds in (0.25, 0.5, 1.5):
            prof = SamplingProfiler(hz=200.0)
            prof.start()
            with mark_active("hotloop"):
                _busy(busy_seconds)
            prof.stop()
            if (
                prof.sample_count > 5
                and prof.span_shares().get("hotloop", 0.0) > 0.5
            ):
                break
        assert prof.sample_count > 5
        shares = prof.span_shares()
        assert shares.get("hotloop", 0.0) > 0.5

    def test_idle_unattributed_threads_skipped(self):
        # A warm pool leaves manager/feeder threads parked in condition
        # waits; they must not dilute attribution with "-" samples.
        done = threading.Event()
        parked = threading.Thread(target=done.wait, daemon=True)
        parked.start()
        try:
            prof = SamplingProfiler(hz=300.0)
            with prof:
                with mark_active("work"):
                    _busy(0.2)
            assert prof.span_shares().get("work", 0.0) > 0.75
            assert not any(
                "threading.wait" in line
                for line in prof.collapsed().splitlines()
            )
        finally:
            done.set()
            parked.join()

    def test_collapsed_format(self):
        prof = SamplingProfiler(hz=200.0)
        with prof:
            with mark_active("fmt"):
                _busy(0.15)
        text = prof.collapsed()
        assert text.endswith("\n")
        lines = text.splitlines()
        assert lines
        for line in lines:
            frames, _, count = line.rpartition(" ")
            assert frames.startswith("span:")
            assert int(count) > 0
        # Descending order by count, flamegraph.pl convention.
        counts = [int(ln.rpartition(" ")[2]) for ln in lines]
        assert counts == sorted(counts, reverse=True)
        # The busy loop's own frame should be in some hot stack.
        assert any("_busy" in ln for ln in lines)

    def test_collapsed_limit(self):
        prof = SamplingProfiler(hz=500.0)
        with prof:
            _busy(0.2)
        full = prof.collapsed().splitlines()
        limited = prof.collapsed(limit=1).splitlines()
        assert len(limited) == min(1, len(full))

    def test_summary_shape(self):
        prof = SamplingProfiler(hz=150.0)
        with prof:
            _busy(0.1)
        s = prof.summary()
        assert s["hz"] == pytest.approx(150.0)
        assert s["ticks"] >= 1
        assert s["samples"] >= 1
        assert s["duration_seconds"] > 0.05
        assert isinstance(s["span_samples"], dict)
        assert isinstance(s["top_frames"], list)
        json.dumps(s)  # JSON-ready

    def test_start_stop_idempotent(self):
        prof = SamplingProfiler(hz=100.0)
        prof.start()
        prof.start()
        prof.stop()
        prof.stop()
        assert prof._thread is None

    def test_bad_hz_rejected(self):
        with pytest.raises(InvalidInputError):
            SamplingProfiler(hz=0.0)

    def test_infra_threads_skipped(self):
        """Threads named repro-* (exporter, the sampler itself) must not
        pollute the profile with their idle wait stacks."""
        stop = threading.Event()
        infra = threading.Thread(
            target=stop.wait, name="repro-fake-infra", daemon=True
        )
        infra.start()
        prof = SamplingProfiler(hz=300.0)
        with prof:
            _busy(0.15)
        stop.set()
        infra.join()
        assert prof.sample_count > 0
        assert not any("stop.wait" in ln or "Event.wait" in ln
                       for ln in prof.collapsed().splitlines())


class TestStageResourceMonitor:
    def test_records_stage_deltas(self):
        tel = Telemetry("t")
        mon = StageResourceMonitor().attach(tel)
        with tel.span("stage_a"):
            _busy(0.05)
        with tel.span("stage_a"):
            _busy(0.05)
        with tel.span("stage_b"):
            pass
        mon.detach()
        res = mon.results()
        assert res["stage_a"]["count"] == 2
        assert res["stage_a"]["cpu_seconds"] > 0.02
        assert res["stage_a"]["wall_seconds"] > 0.05
        assert "rss_delta_bytes" in res["stage_a"]
        assert res["stage_b"]["count"] == 1

    def test_nested_spans_charged_to_both(self):
        tel = Telemetry("t")
        mon = StageResourceMonitor().attach(tel)
        with tel.span("outer"):
            with tel.span("inner"):
                _busy(0.05)
        mon.detach()
        res = mon.results()
        assert res["outer"]["cpu_seconds"] >= res["inner"]["cpu_seconds"] * 0.5
        assert res["inner"]["count"] == 1

    def test_detach_stops_observing(self):
        tel = Telemetry("t")
        mon = StageResourceMonitor().attach(tel)
        mon.detach()
        with tel.span("after"):
            pass
        assert "after" not in mon.results()

    def test_memory_mode_tracks_allocations(self):
        tel = Telemetry("t")
        mon = StageResourceMonitor(memory=True).attach(tel)
        with tel.span("alloc"):
            blob = [bytes(1024) for _ in range(2000)]  # ~2 MB
        mon.detach()
        del blob
        st = mon.results()["alloc"]
        assert st["alloc_delta_bytes"] > 1_000_000
        assert st["alloc_peak_bytes"] >= st["alloc_delta_bytes"]
        import tracemalloc

        assert not tracemalloc.is_tracing()  # monitor stopped what it started


class TestRssBytes:
    def test_positive_on_linux(self):
        assert rss_bytes() > 0


class TestProfileSession:
    def test_payload_shape_and_file(self, tmp_path):
        out = tmp_path / "prof.collapsed"
        cfg = ProfileConfig(enabled=True, hz=250.0, path=str(out))
        tel = Telemetry("t")
        session = ProfileSession(cfg, tel).start()
        with tel.span("work"):
            _busy(0.2)
        payload = session.finish()
        assert payload["samples"] > 0
        assert payload["span_shares"].get("work", 0.0) > 0.5
        assert payload["collapsed"]
        assert payload["collapsed"][0].startswith("span:")
        assert payload["collapsed_path"] == str(out)
        assert out.exists()
        assert out.read_text().splitlines()[0].startswith("span:")
        assert payload["stages"]["work"]["count"] == 1
        json.dumps(payload)

    def test_context_manager_stamps_telemetry(self):
        tel = Telemetry("t")
        with ProfileSession(ProfileConfig(enabled=True, hz=200.0), tel):
            with tel.span("w"):
                _busy(0.1)
        assert tel.profile is not None
        assert tel.profile["samples"] > 0

    def test_report_roundtrip_schema_v3(self):
        tel = Telemetry("t")
        session = ProfileSession(ProfileConfig(enabled=True, hz=200.0), tel).start()
        with tel.span("w"):
            _busy(0.1)
        tel.profile = session.finish()
        report = tel.report(cost=1.0)
        assert report.profile is not None
        again = RunReport.from_json(report.to_json())
        assert again.profile == report.profile
        assert again.profile["hz"] == pytest.approx(200.0)

    def test_v2_reports_still_load(self):
        """Pre-profile reports (schema v2, no ``profile`` key) load fine."""
        tel = Telemetry("t")
        with tel.span("w"):
            pass
        data = json.loads(tel.report(cost=1.0).to_json())
        data.pop("profile", None)
        data["schema_version"] = 2
        report = RunReport.from_json(json.dumps(data))
        assert report.profile is None


class TestPipelineIntegration:
    def test_run_pipeline_profiles_hot_paths(self, clustered_instance):
        """Acceptance criterion: >= 80% of samples attributed to the
        engine's hot-path spans (dp / trees / flow / refine …), not to
        unattributed ``-`` time."""
        from repro.core.config import SolverConfig
        from repro.core.engine import run_pipeline

        g, h, d = clustered_instance
        cfg = SolverConfig(
            n_trees=4,
            seed=5,
            profile=ProfileConfig(enabled=True, hz=500.0),
        )
        result = run_pipeline(g, h, d, cfg, path="profile-test")
        report = result.report()
        profile = report.profile
        assert profile is not None
        assert profile["samples"] > 0
        shares = profile["span_shares"]
        unattributed = shares.get("-", 0.0)
        assert unattributed < 0.2, f"span shares: {shares}"
        assert profile["stages"], "stage resource monitor saw no spans"

    def test_multilevel_profiles_frontend_stages(self, clustered_instance):
        from repro.core.config import MultilevelConfig, SolverConfig
        from repro.multilevel.frontend import solve_multilevel

        g, h, d = clustered_instance
        cfg = SolverConfig(
            n_trees=2,
            seed=5,
            refine=False,
            multilevel=MultilevelConfig(enabled=True, coarsen_to=12),
            profile=ProfileConfig(enabled=True, hz=400.0),
        )
        result = solve_multilevel(g, h, np.asarray(d), cfg)
        profile = result.report().profile
        assert profile is not None
        stages = profile["stages"]
        for name in ("coarsen", "coarse_solve", "uncoarsen"):
            assert name in stages, f"missing front-end stage {name}: {stages}"
