"""Tests for report rendering, diffing, and the ``repro report`` CLI."""

import json

import pytest

from repro.cli import main
from repro.core.telemetry import MemberRecord, Telemetry
from repro.obs.report import (
    ReportDiff,
    StageDelta,
    diff_reports,
    load_report,
    render_report,
)


def make_report(dp_seconds=0.05, cost=9.0, extra_stage=None):
    tel = Telemetry("batch")
    tel.add_seconds("trees", 0.02)
    tel.add_seconds("dp", dp_seconds, count=2)
    tel.add_seconds("repair", 0.004)
    if extra_stage:
        tel.add_seconds(extra_stage, 0.01)
    tel.record_member(
        MemberRecord(index=0, method="spectral", dp_cost=10.0, mapped_cost=cost)
    )
    return tel.report(cost=cost, run_id="0123abcd4567")


class TestRender:
    def test_show_contains_key_facts(self):
        text = render_report(make_report())
        assert "cost=9" in text
        assert "run_id=0123abcd4567" in text
        assert "dp" in text
        assert "winner: member 0 (spectral)" in text

    def test_self_time_uses_child_sum(self):
        tel = Telemetry("run")
        dp = tel.root.add("dp", 0.1)
        dp.add("merge", 0.06)
        text = render_report(tel.report())
        # dp total 100 ms, self 100-60 = 40 ms.
        assert "40.00 ms" in text


class TestStageDelta:
    def test_delta_pct(self):
        assert StageDelta("dp", 1.0, 1.1).delta_pct == pytest.approx(10.0)
        assert StageDelta("dp", None, 1.0).delta_pct is None
        assert StageDelta("dp", 1.0, None).delta_pct is None
        assert StageDelta("dp", 0.0, 1.0).delta_pct is None

    def test_exceeds_threshold(self):
        assert StageDelta("dp", 1.0, 1.2).exceeds(10.0)
        assert not StageDelta("dp", 1.0, 1.05).exceeds(10.0)
        # Improvements never gate.
        assert not StageDelta("dp", 1.0, 0.5).exceeds(10.0)

    def test_new_stage_gates_above_floor(self):
        assert StageDelta("mystery", None, 0.5).exceeds(100.0)
        assert not StageDelta("mystery", None, 0.0).exceeds(0.0)

    def test_vanished_stage_never_gates(self):
        assert not StageDelta("gone", 1.0, None).exceeds(0.0)


class TestDiffReports:
    def test_identical_reports_clean(self):
        r = make_report()
        diff = diff_reports(r, r)
        assert diff.regressions(0.0) == []
        assert diff.cost_delta_pct == pytest.approx(0.0)

    def test_dp_time_regression_detected(self):
        diff = diff_reports(make_report(dp_seconds=0.05), make_report(dp_seconds=0.055))
        assert diff.regressions(5.0) == ["dp"]
        assert diff.regressions(15.0) == []

    def test_cost_regression_listed_first(self):
        diff = diff_reports(
            make_report(dp_seconds=0.05, cost=9.0),
            make_report(dp_seconds=0.06, cost=10.0),
        )
        assert diff.regressions(5.0) == ["cost", "dp"]

    def test_new_stage_appended_and_gated(self):
        diff = diff_reports(make_report(), make_report(extra_stage="embed"))
        assert [s.name for s in diff.stages] == ["trees", "dp", "repair", "embed"]
        assert "embed" in diff.regressions(1000.0)

    def test_render_flags_regressions(self):
        diff = diff_reports(make_report(dp_seconds=0.05), make_report(dp_seconds=0.06))
        text = diff.render(5.0)
        assert "<< REGRESSION" in text
        assert "dp" in text

    def test_cost_delta_undefined_cases(self):
        assert ReportDiff(None, 1.0).cost_delta_pct is None
        assert ReportDiff(0.0, 1.0).cost_delta_pct is None


class TestReportCli:
    @pytest.fixture
    def report_file(self, tmp_path):
        path = tmp_path / "run.json"
        path.write_text(make_report().to_json() + "\n")
        return path

    def test_show(self, report_file, capsys):
        assert main(["report", "show", str(report_file)]) == 0
        out = capsys.readouterr().out
        assert "run report" in out
        assert "winner" in out

    def test_show_missing_file(self, tmp_path, capsys):
        rc = main(["report", "show", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "not found" in capsys.readouterr().err

    def test_trace_writes_loadable_json(self, report_file, tmp_path, capsys):
        out = tmp_path / "run.trace.json"
        assert main(["report", "trace", str(report_file), "--out", str(out)]) == 0
        data = json.loads(out.read_text())
        x_events = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert x_events
        assert all("ts" in e and "dur" in e for e in x_events)

    def test_trace_bad_workers(self, report_file, tmp_path, capsys):
        rc = main(
            [
                "report",
                "trace",
                str(report_file),
                "--out",
                str(tmp_path / "t.json"),
                "--workers",
                "0",
            ]
        )
        assert rc == 2

    def test_diff_self_passes_threshold(self, report_file, capsys):
        rc = main(
            [
                "report",
                "diff",
                str(report_file),
                str(report_file),
                "--fail-above",
                "5",
            ]
        )
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_diff_doctored_dp_time_fails(self, report_file, tmp_path, capsys):
        """+10% dp seconds against --fail-above 5 must exit non-zero."""
        doctored = json.loads(report_file.read_text())
        for child in doctored["spans"]["children"]:
            if child["name"] == "dp":
                child["seconds"] *= 1.10
        doctored_file = tmp_path / "doctored.json"
        doctored_file.write_text(json.dumps(doctored))
        rc = main(
            [
                "report",
                "diff",
                str(report_file),
                str(doctored_file),
                "--fail-above",
                "5",
            ]
        )
        assert rc == 1
        captured = capsys.readouterr()
        assert "<< REGRESSION" in captured.out
        assert "dp" in captured.err

    def test_diff_without_threshold_informational(self, report_file, tmp_path, capsys):
        doctored = json.loads(report_file.read_text())
        for child in doctored["spans"]["children"]:
            child["seconds"] *= 3.0
        doctored_file = tmp_path / "doctored.json"
        doctored_file.write_text(json.dumps(doctored))
        rc = main(["report", "diff", str(report_file), str(doctored_file)])
        assert rc == 0  # no --fail-above: never gates


class TestSolveCliFlags:
    @pytest.fixture
    def graph_file(self, tmp_path):
        from repro.graph.generators import planted_partition
        from repro.graph.io import write_edgelist

        g = planted_partition(2, 6, 0.8, 0.1, seed=1)
        path = tmp_path / "g.edges"
        write_edgelist(path, g)
        return path

    def _solve_args(self, graph_file):
        return [
            "solve",
            "--graph",
            str(graph_file),
            "--degrees",
            "2,2",
            "--cm",
            "5,1,0",
            "--n-trees",
            "2",
            "--quiet",
        ]

    def test_log_json_records_run(self, graph_file, tmp_path, capsys):
        log = tmp_path / "run.jsonl"
        rc = main(self._solve_args(graph_file) + ["--log-json", str(log)])
        assert rc == 0
        records = [json.loads(line) for line in log.read_text().splitlines()]
        events = [r["event"] for r in records]
        assert events[0] == "run_start"
        assert events[-1] == "run_done"
        assert len({r["run_id"] for r in records}) == 1

    def test_verbose_writes_stderr(self, graph_file, capsys):
        rc = main(self._solve_args(graph_file) + ["--verbose"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "run_start" in err
        assert "run_done" in err

    def test_default_output_unchanged(self, graph_file, capsys):
        rc = main(self._solve_args(graph_file))
        assert rc == 0
        captured = capsys.readouterr()
        assert captured.err == ""
        assert "cost=" in captured.out

    def test_end_to_end_solve_then_trace(self, graph_file, tmp_path, capsys):
        """The acceptance sequence: solve --report, then report trace."""
        report = tmp_path / "run.json"
        rc = main(self._solve_args(graph_file) + ["--report", str(report)])
        assert rc == 0
        trace = tmp_path / "run.trace.json"
        assert main(["report", "trace", str(report), "--out", str(trace)]) == 0
        data = json.loads(trace.read_text())
        assert data["otherData"]["run_id"] == load_report(report).meta["run_id"]
