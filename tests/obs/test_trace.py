"""Tests for Chrome trace-event export (Perfetto compatibility)."""

import json

import pytest

from repro.core.telemetry import MemberRecord, Telemetry
from repro.obs.trace import report_to_trace, write_trace


@pytest.fixture
def report():
    """A realistic report: stage skeleton + two members + counters."""
    tel = Telemetry("batch")
    with tel.span("trees"):
        tel.counter("n_trees", 2)
    tel.add_seconds("quantize", 0.001)
    tel.add_seconds("dp", 0.05, count=2)
    tel.add_seconds("repair", 0.004, count=2)
    tel.add_seconds("refine", 0.01)
    tel.record_member(
        MemberRecord(
            index=0,
            method="spectral",
            dp_cost=10.0,
            mapped_cost=9.0,
            dp_seconds=0.03,
            repair_seconds=0.002,
            dp_states_max=40,
        )
    )
    tel.record_member(
        MemberRecord(
            index=1,
            method="frt",
            dp_cost=11.0,
            mapped_cost=10.5,
            dp_seconds=0.02,
            repair_seconds=0.002,
        )
    )
    return tel.report(config={"n_jobs": 2}, cost=9.0, run_id="feedc0ffee12")


class TestTraceStructure:
    def test_json_serialisable_and_loadable(self, report, tmp_path):
        out = write_trace(report, tmp_path / "run.trace.json")
        data = json.loads(out.read_text())
        assert isinstance(data["traceEvents"], list)
        assert data["displayTimeUnit"] == "ms"
        assert data["otherData"]["cost"] == 9.0
        assert data["otherData"]["run_id"] == "feedc0ffee12"

    def test_duration_events_have_required_keys(self, report):
        trace = report_to_trace(report)
        x_events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert x_events, "no complete events emitted"
        for e in x_events:
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= e.keys()
            assert e["ts"] >= 0.0
            assert e["dur"] >= 0.0

    def test_only_known_phases(self, report):
        trace = report_to_trace(report)
        assert {e["ph"] for e in trace["traceEvents"]} <= {"X", "M"}

    def test_metadata_names_lanes(self, report):
        trace = report_to_trace(report)
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = {
            (e["name"], e["tid"]): e["args"]["name"] for e in meta
        }
        assert names[("thread_name", 0)] == "engine"
        assert names[("thread_name", 1)] == "worker-0"
        assert names[("thread_name", 2)] == "worker-1"
        assert "batch" in names[("process_name", 0)]

    def test_timestamps_monotone_per_lane(self, report):
        trace = report_to_trace(report)
        by_tid = {}
        for e in trace["traceEvents"]:
            if e["ph"] == "X":
                by_tid.setdefault(e["tid"], []).append(e["ts"])
        for tid, stamps in by_tid.items():
            assert stamps == sorted(stamps), f"lane {tid} not monotone"

    def test_events_sorted_by_lane_then_time(self, report):
        trace = report_to_trace(report)
        keys = [
            (e["tid"], e["ts"]) for e in trace["traceEvents"] if e["ph"] == "X"
        ]
        assert keys == sorted(keys)


class TestWorkerLanes:
    def test_lane_count_from_config(self, report):
        trace = report_to_trace(report)  # config says n_jobs=2
        tids = {e["tid"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert tids == {0, 1, 2}

    def test_workers_override(self, report):
        trace = report_to_trace(report, workers=1)
        tids = {e["tid"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert tids == {0, 1}
        # Serial lane: members run back-to-back, no overlap.
        lane = [
            e
            for e in trace["traceEvents"]
            if e["ph"] == "X" and e["tid"] == 1
        ]
        for prev, nxt in zip(lane, lane[1:]):
            assert nxt["ts"] >= prev["ts"] + prev["dur"] - 1e-9

    def test_bad_workers_rejected(self, report):
        with pytest.raises(ValueError):
            report_to_trace(report, workers=0)

    def test_member_args_carry_dp_stats(self, report):
        trace = report_to_trace(report)
        dp0 = next(
            e for e in trace["traceEvents"] if e.get("name") == "dp[0]"
        )
        assert dp0["args"]["method"] == "spectral"
        assert dp0["args"]["dp_states_max"] == 40
        assert dp0["dur"] == pytest.approx(0.03 * 1e6)

    def test_members_start_inside_dp_stage(self, report):
        trace = report_to_trace(report)
        events = trace["traceEvents"]
        dp_stage = next(
            e for e in events if e.get("name") == "dp" and e["tid"] == 0
        )
        for e in events:
            if e["ph"] == "X" and e["tid"] > 0:
                assert e["ts"] >= dp_stage["ts"] - 1e-9


class TestMultilevelTrace:
    """The coarsen–solve–refine front-end must export cleanly: its stage
    spans nest, the engine skeleton sits under coarse_solve, and pool
    members still get worker lanes."""

    @pytest.fixture(scope="class")
    def ml_report(self, request):
        import numpy as np

        from repro.core.config import MultilevelConfig, SolverConfig
        from repro.graph import planted_partition, random_demands
        from repro.hierarchy.hierarchy import Hierarchy
        from repro.multilevel.frontend import solve_multilevel

        h = Hierarchy([2, 4], [10.0, 3.0, 0.0])
        g = planted_partition(4, 6, 0.9, 0.05, seed=11)
        d = random_demands(g.n, h.total_capacity, fill=0.6, skew=0.3, seed=12)
        cfg = SolverConfig(
            n_trees=2,
            n_jobs=2,
            refine=False,
            seed=3,
            multilevel=MultilevelConfig(enabled=True, coarsen_to=12),
        )
        result = solve_multilevel(g, h, np.asarray(d), cfg)
        return result.report()

    def test_frontend_stage_events_present(self, ml_report):
        trace = report_to_trace(ml_report)
        names = {
            e["name"] for e in trace["traceEvents"]
            if e["ph"] == "X" and e["tid"] == 0
        }
        assert {"coarsen", "coarse_solve", "uncoarsen"} <= names
        assert any(n.startswith("level_") for n in names)

    def test_engine_skeleton_nests_under_coarse_solve(self, ml_report):
        trace = report_to_trace(ml_report)
        engine = {
            e["name"]: e for e in trace["traceEvents"]
            if e["ph"] == "X" and e["tid"] == 0
        }
        cs = engine["coarse_solve"]
        for stage in ("trees", "dp"):
            assert stage in engine, f"engine stage {stage} missing from trace"
            ev = engine[stage]
            assert ev["ts"] >= cs["ts"] - 1e-9
            assert ev["ts"] + ev["dur"] <= cs["ts"] + cs["dur"] + 1e-9

    def test_level_spans_nest_under_uncoarsen(self, ml_report):
        trace = report_to_trace(ml_report)
        lane0 = {
            e["name"]: e for e in trace["traceEvents"]
            if e["ph"] == "X" and e["tid"] == 0
        }
        un = lane0["uncoarsen"]
        levels = [e for n, e in lane0.items() if n.startswith("level_")]
        assert levels
        for ev in levels:
            assert ev["ts"] >= un["ts"] - 1e-9
            assert ev["ts"] + ev["dur"] <= un["ts"] + un["dur"] + 1e-9

    def test_pool_members_get_worker_lanes(self, ml_report):
        trace = report_to_trace(ml_report)
        worker_events = [
            e for e in trace["traceEvents"] if e["ph"] == "X" and e["tid"] > 0
        ]
        assert {e["tid"] for e in worker_events} == {1, 2}
        assert {e["name"] for e in worker_events} >= {"dp[0]", "dp[1]"}

    def test_roundtrips_through_disk(self, ml_report, tmp_path):
        out = write_trace(ml_report, tmp_path / "ml.trace.json")
        data = json.loads(out.read_text())
        assert data["otherData"]["cost"] == pytest.approx(ml_report.cost)
        assert any(
            e.get("name") == "coarse_solve" for e in data["traceEvents"]
        )


class TestDegenerateReports:
    def test_memberless_report_has_engine_lane_only(self):
        tel = Telemetry("empty")
        tel.add_seconds("dp", 0.01)
        trace = report_to_trace(tel.report())
        tids = {e["tid"] for e in trace["traceEvents"]}
        assert tids == {0}

    def test_zero_duration_spans_allowed(self):
        tel = Telemetry("zero")
        with tel.span("trees"):
            pass
        trace = report_to_trace(tel.report())
        x = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert all(e["dur"] >= 0.0 for e in x)

    def test_parent_stretches_over_children(self):
        """Summed child time exceeding the parent's own span is covered."""
        tel = Telemetry("run")
        root_child = tel.root.add("dp", 0.01)
        root_child.add("merge", 0.04)
        root_child.add("merge2", 0.03)
        trace = report_to_trace(tel.report())
        dp = next(e for e in trace["traceEvents"] if e.get("name") == "dp")
        assert dp["dur"] == pytest.approx((0.04 + 0.03) * 1e6)
