"""End-to-end property tests: random instances through the full pipeline.

Each generated instance runs ``solve_hgp`` and every invariant the
library promises is checked on the result — the closest thing to a
fuzzer for the whole stack.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Graph, Hierarchy, SolverConfig, solve_hgp
from repro.hierarchy.mirror import check_laminar, eq3_cost, mirror_sets


@st.composite
def instances(draw):
    n = draw(st.integers(min_value=2, max_value=14))
    density = draw(st.floats(min_value=0.2, max_value=0.8))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    edges = [
        (i, j, float(rng.uniform(0.2, 3.0)))
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < density
    ]
    g = Graph(n, edges)
    shape = draw(st.sampled_from([(4,), (2, 2), (2, 4), (2, 2, 2)]))
    cm = [float(c * 2) for c in range(len(shape), -1, -1)]
    hier = Hierarchy(list(shape), cm)
    fill = draw(st.floats(min_value=0.2, max_value=0.85))
    d = rng.uniform(0.5, 1.5, size=n)
    d = d / d.sum() * (fill * hier.total_capacity)
    d = np.clip(d, 1e-6, 1.0)
    return g, hier, d


class TestEndToEnd:
    @given(instances())
    @settings(max_examples=20, deadline=None)
    def test_pipeline_invariants(self, instance):
        g, hier, d = instance
        cfg = SolverConfig(seed=0, n_trees=2, refine=False)
        res = solve_hgp(g, hier, d, cfg)
        p = res.placement
        # Every vertex placed on a real leaf.
        assert p.leaf_of.shape == (g.n,)
        assert (p.leaf_of >= 0).all() and (p.leaf_of < hier.k).all()
        # Theorem-1 violation bound.
        assert p.max_violation() <= (1 + res.grid.epsilon) * (1 + hier.h) + 1e-9
        # Per-level Theorem-5 bounds.
        for j in range(1, hier.h + 1):
            assert p.level_violation(j) <= (1 + j) * (1 + res.grid.epsilon) + 1e-9
        # Proposition 1 on every ensemble member.
        for mapped, dp in zip(res.tree_costs, res.dp_costs):
            assert mapped <= dp + 1e-6
        # Lemma 2 on the output (cm is normalised in these instances).
        assert eq3_cost(p) == pytest.approx(p.cost())
        # Mirror laminarity.
        check_laminar(hier, mirror_sets(p), g.n)

    @given(instances())
    @settings(max_examples=10, deadline=None)
    def test_refine_and_swaps_never_hurt(self, instance):
        g, hier, d = instance
        base = solve_hgp(g, hier, d, SolverConfig(seed=0, n_trees=2, refine=False))
        refined = solve_hgp(g, hier, d, SolverConfig(seed=0, n_trees=2, refine=True))
        assert refined.cost <= base.cost + 1e-9
        assert refined.placement.max_violation() <= max(
            1.0, base.placement.max_violation()
        ) + 1e-9
