"""Property-based tests (hypothesis) for the graph kernel."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Graph


@st.composite
def graphs(draw, max_n=12, max_m=30):
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    edges = []
    for _ in range(m):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            continue
        w = draw(
            st.floats(
                min_value=0.01, max_value=100.0, allow_nan=False, allow_infinity=False
            )
        )
        edges.append((u, v, w))
    return Graph(n, edges)


@st.composite
def graphs_with_masks(draw):
    g = draw(graphs())
    mask = np.asarray(draw(st.lists(st.booleans(), min_size=g.n, max_size=g.n)))
    return g, mask


class TestCutProperties:
    @given(graphs_with_masks())
    @settings(max_examples=60, deadline=None)
    def test_cut_symmetry(self, gm):
        g, mask = gm
        assert abs(g.cut_weight(mask) - g.cut_weight(~mask)) < 1e-9

    @given(graphs_with_masks())
    @settings(max_examples=60, deadline=None)
    def test_cut_nonnegative_and_bounded(self, gm):
        g, mask = gm
        cut = g.cut_weight(mask)
        assert 0.0 <= cut <= g.total_weight + 1e-9

    @given(graphs_with_masks())
    @settings(max_examples=60, deadline=None)
    def test_cut_matches_naive(self, gm):
        g, mask = gm
        naive = sum(w for u, v, w in g.iter_edges() if mask[u] != mask[v])
        assert abs(g.cut_weight(mask) - naive) < 1e-6

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_volume_totals(self, g):
        full = np.ones(g.n, dtype=bool)
        assert abs(g.volume(full) - 2 * g.total_weight) < 1e-6


class TestStructuralProperties:
    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_degrees_sum_to_twice_edges(self, g):
        assert sum(g.degree(v) for v in range(g.n)) == 2 * g.m

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_weighted_degrees_sum(self, g):
        assert abs(g.weighted_degrees.sum() - 2 * g.total_weight) < 1e-6

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_contract_to_singleton_removes_all(self, g):
        q = g.contract(np.zeros(g.n, dtype=np.int64))
        assert q.n == 1 and q.m == 0

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_identity_contract_preserves(self, g):
        q = g.contract(np.arange(g.n))
        assert q == g

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_components_partition(self, g):
        ncomp, labels = g.connected_components()
        assert labels.shape == (g.n,)
        assert np.unique(labels).size == ncomp
        # No edge crosses components.
        assert g.partition_cut_weight(labels) == 0.0

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_subgraph_of_everything_is_identity(self, g):
        sub, back = g.subgraph(list(range(g.n)))
        assert sub == g
        assert np.array_equal(back, np.arange(g.n))
