"""Property-based tests on placements, repair and quantization."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Graph, Hierarchy, Placement
from repro.hgpt.quantize import DemandGrid


def _random_instance(rng, n, k_shape):
    edges = [
        (i, j, float(rng.uniform(0.2, 3.0)))
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < 0.4
    ]
    g = Graph(n, edges)
    hier = Hierarchy(k_shape, [float(c) for c in range(len(k_shape), -1, -1)])
    d = rng.uniform(0.05, 0.5, size=n)
    leaf_of = rng.integers(0, hier.k, size=n)
    return Placement(g, hier, d, leaf_of)


class TestPlacementInvariants:
    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_sibling_permutation_preserves_cost(self, n, seed):
        """Swapping two sibling subtrees of H leaves Eq. (1) unchanged —
        the symmetry the exact solver's canonicalisation exploits."""
        rng = np.random.default_rng(seed)
        p = _random_instance(rng, n, [2, 2])
        hier = p.hierarchy
        # Swap the two children of socket 0: leaves 0 <-> 1.
        perm = np.arange(hier.k)
        perm[0], perm[1] = 1, 0
        q = Placement(p.graph, hier, p.demands, perm[p.leaf_of])
        assert abs(p.cost() - q.cost()) < 1e-9
        # Swap the two sockets wholesale: leaves (0,1) <-> (2,3).
        perm2 = np.array([2, 3, 0, 1])
        r = Placement(p.graph, hier, p.demands, perm2[p.leaf_of])
        assert abs(p.cost() - r.cost()) < 1e-9

    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_cost_scales_with_cm(self, n, seed, scale):
        """Scaling all multipliers scales Eq. (1) linearly."""
        rng = np.random.default_rng(seed)
        p = _random_instance(rng, n, [2, 2])
        hier = p.hierarchy
        scaled = Hierarchy(
            hier.degrees, [c * scale for c in hier.cm], hier.leaf_capacity
        )
        q = Placement(p.graph, scaled, p.demands, p.leaf_of)
        assert abs(q.cost() - scale * p.cost()) < 1e-6 * max(1.0, p.cost())

    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_cost_bounds(self, n, seed):
        """cm(h)·W <= cost <= cm(0)·W for any placement."""
        rng = np.random.default_rng(seed)
        p = _random_instance(rng, n, [2, 2])
        w_total = p.graph.total_weight
        assert p.hierarchy.cm[-1] * w_total - 1e-9 <= p.cost()
        assert p.cost() <= p.hierarchy.cm[0] * w_total + 1e-9

    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_level_loads_conserve_demand(self, n, seed):
        rng = np.random.default_rng(seed)
        p = _random_instance(rng, n, [2, 2])
        total = p.demands.sum()
        for j in range(p.hierarchy.h + 1):
            assert abs(p.level_loads(j).sum() - total) < 1e-9


class TestQuantizeProperties:
    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=16,
        ),
        st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_quantize_sound_both_directions(self, demands, epsilon):
        hier = Hierarchy([2, 4], [10.0, 3.0, 0.0])
        d = np.asarray(demands)
        if d.sum() > hier.total_capacity:
            d = d / d.sum() * hier.total_capacity * 0.9
        grid = DemandGrid.from_epsilon(hier, d.size, epsilon)
        q = grid.quantize(d)
        # Upward rounding: quantized demand over-covers real demand ...
        assert (q * grid.unit >= d - 1e-9).all()
        # ... by less than one cell each.
        assert (q * grid.unit <= d + grid.unit + 1e-9).all()
        # Grid-feasible loads dequantize within the (1+eps) promise.
        for j in range(hier.h + 1):
            assert grid.dequantize_load(grid.caps[j]) <= (
                (1 + epsilon) * hier.capacity(j) + 1e-9
            )

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_budget_grid_total(self, budget_mult):
        hier = Hierarchy([2, 2], [2.0, 1.0, 0.0])
        d = np.full(4, 0.3)
        budget = 4 * budget_mult
        grid = DemandGrid.from_budget(hier, d, budget)
        q = grid.quantize(d)
        assert budget <= q.sum() <= budget + d.size
