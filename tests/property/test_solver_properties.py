"""Property-based tests on the DP, hierarchy and flow invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Graph, Hierarchy
from repro.flow.maxflow import max_flow
from repro.hgpt.dp import solve_rhgpt
from repro.bench.oracles import brute_force_optimum, path_binary_tree as simple_btree


class TestHierarchyProperties:
    @given(
        st.lists(st.integers(min_value=2, max_value=3), min_size=1, max_size=3),
        st.integers(min_value=0, max_value=1 << 16),
    )
    @settings(max_examples=50, deadline=None)
    def test_lca_axioms(self, degrees, seed):
        cm = list(range(len(degrees), -1, -1))
        h = Hierarchy(degrees, [float(c) for c in cm])
        rng = np.random.default_rng(seed)
        a, b, c = rng.integers(0, h.k, size=3)
        # Symmetry, identity, and the ultrametric triangle property.
        assert h.lca_level(a, b) == h.lca_level(b, a)
        assert h.lca_level(a, a) == h.h
        assert h.lca_level(a, c) >= min(h.lca_level(a, b), h.lca_level(b, c))

    @given(
        st.lists(st.integers(min_value=2, max_value=3), min_size=1, max_size=3)
    )
    @settings(max_examples=30, deadline=None)
    def test_capacity_telescopes(self, degrees):
        cm = [float(c) for c in range(len(degrees), -1, -1)]
        h = Hierarchy(degrees, cm)
        for j in range(h.h):
            assert h.capacity(j) == h.degrees[j] * h.capacity(j + 1)


class TestDPProperties:
    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
            min_size=2,
            max_size=4,
        ),
        st.lists(st.integers(min_value=1, max_value=3), min_size=3, max_size=5),
        st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=25, deadline=None)
    def test_dp_equals_bruteforce_h1(self, weights, demands, extra_cap):
        n = len(demands)
        weights = (weights * n)[: n - 1]
        bt = simple_btree(weights, demands)
        caps = [max(max(demands), sum(demands) // 2 + extra_cap)]
        deltas = [0.0, 1.0]
        sol = solve_rhgpt(bt, caps, deltas)
        oracle = brute_force_optimum(bt, caps, deltas)
        assert abs(sol.cost - oracle) < 1e-6
        sol.validate(n, caps, np.asarray(demands))

    @given(
        st.lists(st.integers(min_value=1, max_value=3), min_size=3, max_size=5),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_cost_monotone_in_capacity(self, demands, seed):
        """Loosening capacities can only lower the optimum."""
        rng = np.random.default_rng(seed)
        n = len(demands)
        weights = rng.uniform(0.2, 4.0, size=n - 1).round(2).tolist()
        bt = simple_btree(weights, demands)
        total = sum(demands)
        tight = [max(max(demands), total // 2)]
        loose = [total]
        c_tight = solve_rhgpt(bt, tight, [0.0, 1.0]).cost
        c_loose = solve_rhgpt(bt, loose, [0.0, 1.0]).cost
        assert c_loose <= c_tight + 1e-9
        assert c_loose == 0.0  # everything fits one set

    @given(
        st.lists(st.integers(min_value=1, max_value=2), min_size=3, max_size=5),
        st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_cost_scales_linearly_with_deltas(self, demands, scale):
        n = len(demands)
        weights = [1.0 + i for i in range(n - 1)]
        bt = simple_btree(weights, demands)
        caps = [max(2, sum(demands) // 2)]
        base = solve_rhgpt(bt, caps, [0.0, 1.0]).cost
        scaled = solve_rhgpt(bt, caps, [0.0, scale]).cost
        assert abs(scaled - scale * base) < 1e-6


class TestFlowProperties:
    @given(
        st.integers(min_value=4, max_value=9),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_flow_symmetric_in_terminals(self, n, seed):
        rng = np.random.default_rng(seed)
        edges = [
            (i, j, float(rng.uniform(0.5, 2.0)))
            for i in range(n)
            for j in range(i + 1, n)
            if rng.random() < 0.5
        ]
        if not edges:
            edges = [(0, 1, 1.0)]
        g = Graph(n, edges)
        f_ab, _ = max_flow(g, 0, n - 1)
        f_ba, _ = max_flow(g, n - 1, 0)
        assert abs(f_ab - f_ba) < 1e-9

    @given(
        st.integers(min_value=4, max_value=8),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_cut_certifies(self, n, seed):
        rng = np.random.default_rng(seed)
        edges = [
            (i, j, float(rng.uniform(0.5, 2.0)))
            for i in range(n)
            for j in range(i + 1, n)
            if rng.random() < 0.6
        ]
        if not edges:
            edges = [(0, 1, 1.0)]
        g = Graph(n, edges)
        value, side = max_flow(g, 0, n - 1)
        assert abs(g.cut_weight(side) - value) < 1e-9
