"""Fixtures for the resilience / chaos tests.

Faults are enabled by setting ``REPRO_FAULT_SPEC`` in the environment.
The pool uses the fork start method, so workers inherit the environment
at fork time: the ``fault_env`` fixture always shuts the persistent pool
down *before* changing the variable, and again on teardown so later
tests never reuse workers with a fault spec baked in.
"""

import pytest

from repro.core import pool as worker_pool
from repro.graph.generators import planted_partition, random_demands
from repro.hierarchy.hierarchy import Hierarchy
from repro.testing.faults import ENV_FAULT_SPEC


@pytest.fixture
def instance():
    """The canonical clusterable instance the chaos tests solve."""
    hier = Hierarchy([2, 4], [10.0, 3.0, 0.0])
    g = planted_partition(4, 6, 0.9, 0.05, seed=11)
    d = random_demands(g.n, hier.total_capacity, fill=0.6, skew=0.3, seed=12)
    return g, hier, d


@pytest.fixture
def fault_env(monkeypatch):
    """Set (or clear) the fault spec with correct pool-lifecycle ordering."""

    def _set(spec: str) -> None:
        worker_pool.shutdown_pool()
        if spec:
            monkeypatch.setenv(ENV_FAULT_SPEC, spec)
        else:
            monkeypatch.delenv(ENV_FAULT_SPEC, raising=False)

    _set("")  # start each test fault-free, even under the CI chaos matrix
    yield _set
    worker_pool.shutdown_pool()
