"""The chaos matrix: one recovery scenario per recoverable fault kind.

Locally this parameterizes over the built-in matrix.  In the CI
``chaos`` job the matrix comes from outside: the job sets
``REPRO_FAULT_SPEC`` in the environment and this module tests exactly
that spec (the ambient value must name a *recoverable* fault — the CI
matrix uses crash, hang and spool corruption).

Each scenario asserts the two halves of the resilience contract:

* **Recovery** — the run completes despite the fault, with no degraded
  flag and the full ensemble accounted for.
* **Determinism** — cost and placement are bit-identical to a fault-free
  run: retried members re-solve the same tree on the same grid.
"""

import os

import numpy as np
import pytest

from repro import SolverConfig, solve_hgp
from repro.core.resilience import ResilienceConfig, RetryPolicy
from repro.testing.faults import ENV_FAULT_SPEC

MATRIX = [
    "worker_crash:member=2:attempt=1",
    "worker_hang:member=1:attempt=1:seconds=600",
    "spool_corrupt:attempt=1",
]

_AMBIENT = os.environ.get(ENV_FAULT_SPEC, "").strip()
SPECS = [_AMBIENT] if _AMBIENT else MATRIX


def _tolerant_config() -> SolverConfig:
    """A policy that survives every matrix fault: retries + a deadline."""
    return SolverConfig(
        seed=3,
        n_trees=8,
        refine=False,
        n_jobs=4,
        resilience=ResilienceConfig(
            retry=RetryPolicy(max_attempts=3, base_delay=0.0),
            member_timeout_s=10.0,
        ),
    )


@pytest.mark.parametrize("spec", SPECS)
def test_recovery_is_bit_identical(spec, instance, fault_env):
    g, hier, d = instance
    baseline = solve_hgp(g, hier, d, _tolerant_config())

    fault_env(spec)
    recovered = solve_hgp(g, hier, d, _tolerant_config())

    assert recovered.cost == baseline.cost
    assert np.array_equal(
        recovered.placement.leaf_of, baseline.placement.leaf_of
    )
    report = recovered.report()
    assert not report.degraded
    assert len(report.members) == 8
