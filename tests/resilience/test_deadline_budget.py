"""Unit tests for ``ResilienceConfig.total_deadline_s`` (satellite 2).

The whole-run budget must *clamp* every stage of the retry schedule —
backoff sleeps and per-wave member timeouts — so the run never outlives
the budget.  The subtle contract under test: a final attempt that
starts with budget remaining is **truncated** to the leftover budget,
not skipped; only an attempt whose budget is already exhausted before
it starts is skipped (and recorded as a timeout failure).
"""

from __future__ import annotations

import time

import pytest

from repro import SolverConfig, solve_hgp
from repro.core.resilience import ResilienceConfig, RetryPolicy
from repro.errors import DegradedRunError, InvalidInputError


def _config(**resilience) -> SolverConfig:
    return SolverConfig(
        seed=3,
        n_trees=4,
        refine=False,
        n_jobs=2,
        resilience=ResilienceConfig(**resilience),
    )


class TestValidation:
    @pytest.mark.parametrize("bad", [0.0, -1.0, -0.001])
    def test_rejects_non_positive_budget(self, bad):
        with pytest.raises(InvalidInputError):
            ResilienceConfig(total_deadline_s=bad)

    def test_none_is_unbounded(self):
        assert ResilienceConfig().total_deadline_s is None
        assert ResilienceConfig(total_deadline_s=2.5).total_deadline_s == 2.5


class TestBudgetClampsWallTime:
    def test_hung_workers_bounded_by_budget_not_member_timeout(
        self, instance, fault_env
    ):
        """Budget 1.5s beats member_timeout 10s x attempts: the run must
        end (degraded) in ~budget wall time, not attempts x timeout."""
        fault_env("worker_hang:seconds=600")
        cfg = _config(
            retry=RetryPolicy(max_attempts=3, base_delay=0.2),
            member_timeout_s=10.0,
            total_deadline_s=1.5,
        )
        t0 = time.monotonic()
        with pytest.raises(DegradedRunError) as exc_info:
            solve_hgp(*instance, cfg)
        elapsed = time.monotonic() - t0
        # Without the clamp this would be >= 10s (first wave alone).
        assert elapsed < 6.0, f"budget did not clamp wall time: {elapsed:.1f}s"
        kinds = {f.kind for f in exc_info.value.failures}
        assert kinds == {"timeout"}

    def test_exhausted_budget_skips_attempt_with_timeout_failures(
        self, instance, fault_env
    ):
        """When the budget dies between attempts, pending members are
        recorded as timeouts naming the budget — never silently lost."""
        fault_env("worker_hang:seconds=600")
        cfg = _config(
            retry=RetryPolicy(max_attempts=4, base_delay=5.0),
            member_timeout_s=0.3,
            total_deadline_s=1.0,
        )
        with pytest.raises(DegradedRunError) as exc_info:
            solve_hgp(*instance, cfg)
        # Every member failed as a timeout; at least one failure message
        # names the exhausted budget (the skipped-attempt marker).
        failures = exc_info.value.failures
        assert failures and all(f.kind == "timeout" for f in failures)

    def test_backoff_sleep_clamped_to_budget(self, instance, fault_env):
        """A 30s backoff schedule cannot stretch a 1s budget."""
        fault_env("worker_hang:seconds=600")
        cfg = _config(
            retry=RetryPolicy(max_attempts=2, base_delay=30.0),
            member_timeout_s=0.3,
            total_deadline_s=1.0,
        )
        t0 = time.monotonic()
        with pytest.raises(DegradedRunError):
            solve_hgp(*instance, cfg)
        assert time.monotonic() - t0 < 5.0


class TestFinalAttemptTruncatedNotSkipped:
    def test_retry_with_leftover_budget_runs_and_succeeds(
        self, instance, fault_env
    ):
        """Attempt 1 burns ~0.4s hanging; attempt 2 still has budget
        left, so it must RUN (truncated) — and, fault-free on retry,
        succeed.  A skip-on-low-budget bug fails this test."""
        baseline = solve_hgp(*instance, _config())
        fault_env("worker_hang:attempt=1:seconds=600")
        cfg = _config(
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
            member_timeout_s=0.4,
            total_deadline_s=30.0,
        )
        result = solve_hgp(*instance, cfg)
        assert result.cost == baseline.cost

    def test_truncated_wave_timeout_is_remaining_budget(
        self, instance, fault_env
    ):
        """With 2.5s of budget and a 2s member timeout, the second pool
        wave must run with only the ~0.5s leftover as its effective
        timeout: the run ends near the budget, proving the wave was
        truncated rather than granted its full member_timeout_s."""
        fault_env("worker_hang:seconds=600")
        cfg = _config(
            retry=RetryPolicy(max_attempts=3, base_delay=0.0),
            member_timeout_s=2.0,
            total_deadline_s=2.5,
        )
        t0 = time.monotonic()
        with pytest.raises(DegradedRunError):
            solve_hgp(*instance, cfg)
        elapsed = time.monotonic() - t0
        # Attempt 1: ~2.0s (full member timeout).  Attempt 2 truncated
        # to the ~0.5s left; attempt 3 skipped (budget gone).  A wave
        # granted member_timeout_s afresh would push well past 4s even
        # before restart overhead.
        assert elapsed < 4.0

    def test_partial_results_salvaged_within_budget(self, instance, fault_env):
        """allow_partial + a budget: members that finished before the
        budget died are kept, the rest are timeout failures."""
        fault_env("worker_hang:member=1:seconds=600")
        cfg = _config(
            retry=RetryPolicy(max_attempts=1),
            member_timeout_s=0.5,
            total_deadline_s=5.0,
            allow_partial=True,
            min_members=1,
        )
        result = solve_hgp(*instance, cfg)
        report = result.report()
        assert report.degraded
        assert {f.kind for f in report.failures} == {"timeout"}
        assert report.cost is not None


class TestBudgetComposesWithServe:
    def test_build_config_clamps_both_knobs(self):
        """The serve layer folds a request budget into *both*
        total_deadline_s and member_timeout_s (never raising either)."""
        from repro.serve.protocol import build_config, parse_solve_request
        import json

        payload = {
            "graph": {"n": 2, "edges": [[0, 1, 1.0]]},
            "hierarchy": {"degrees": [2], "cm": [1.0, 0.0]},
            "demands": [0.5, 0.5],
        }
        req = parse_solve_request(json.dumps(payload).encode())
        base = SolverConfig(
            resilience=ResilienceConfig(
                member_timeout_s=60.0, total_deadline_s=120.0
            )
        )
        cfg = build_config(req, base, budget_s=2.0)
        assert cfg.resilience.total_deadline_s == 2.0
        assert cfg.resilience.member_timeout_s == 2.0
        # A generous budget never *raises* the configured knobs.
        cfg2 = build_config(req, base, budget_s=500.0)
        assert cfg2.resilience.total_deadline_s == 120.0
        assert cfg2.resilience.member_timeout_s == 60.0
