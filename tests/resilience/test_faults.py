"""Unit tests for the fault-injection harness itself."""

import pickle

import pytest

from repro.testing.faults import (
    ENV_FAULT_SPEC,
    FaultSpec,
    InjectedFaultError,
    active_specs,
    maybe_inject,
    parse_fault_spec,
)


class TestParse:
    def test_single_spec(self):
        (spec,) = parse_fault_spec("worker_crash:member=2:attempt=1")
        assert spec.kind == "worker_crash"
        assert spec.site == "member"
        assert spec.get("member") == "2"
        assert spec.get("attempt") == "1"
        assert spec.get("missing", "x") == "x"

    def test_multiple_specs(self):
        specs = parse_fault_spec("member_error:member=0; cache_corrupt:kind=trees")
        assert [s.kind for s in specs] == ["member_error", "cache_corrupt"]
        assert [s.site for s in specs] == ["member", "cache"]

    def test_empty_chunks_skipped(self):
        assert parse_fault_spec(";;worker_hang;;") == (
            FaultSpec(kind="worker_hang"),
        )

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            parse_fault_spec("worker_explode")

    def test_malformed_constraint_raises(self):
        with pytest.raises(ValueError, match="malformed fault constraint"):
            parse_fault_spec("worker_crash:member")


class TestMatching:
    def test_int_constraints_compare_numerically(self):
        (spec,) = parse_fault_spec("member_error:member=02")
        assert spec.matches({"member": 2, "attempt": 1})
        assert not spec.matches({"member": 3, "attempt": 1})

    def test_missing_context_key_never_matches(self):
        (spec,) = parse_fault_spec("member_error:member=1")
        assert not spec.matches({"attempt": 1})

    def test_unconstrained_spec_matches_everything(self):
        (spec,) = parse_fault_spec("member_error")
        assert spec.matches({"member": 7, "attempt": 3, "in_worker": False})

    def test_worker_only_kinds_need_a_worker(self):
        (spec,) = parse_fault_spec("worker_crash:member=1")
        assert not spec.matches({"member": 1, "in_worker": False})
        assert not spec.matches({"member": 1})
        assert spec.matches({"member": 1, "in_worker": True})

    def test_effect_params_are_not_constraints(self):
        (spec,) = parse_fault_spec("worker_hang:seconds=60:member=1")
        assert spec.matches({"member": 1, "in_worker": True})


class TestActiveSpecs:
    def test_empty_without_env(self, monkeypatch):
        monkeypatch.delenv(ENV_FAULT_SPEC, raising=False)
        assert active_specs() == ()

    def test_reads_env(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULT_SPEC, "member_error:member=3")
        (spec,) = active_specs()
        assert spec.kind == "member_error"


class TestInjection:
    def test_member_error_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULT_SPEC, "member_error:member=1")
        with pytest.raises(InjectedFaultError):
            maybe_inject("member", member=1, attempt=1, in_worker=False)
        # Different member: silent.
        maybe_inject("member", member=0, attempt=1, in_worker=False)
        # Different site: silent.
        maybe_inject("spool", member=1, attempt=1, in_worker=False)

    def test_spool_corrupt_raises_unpickling_error(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULT_SPEC, "spool_corrupt:attempt=1")
        with pytest.raises(pickle.UnpicklingError):
            maybe_inject("spool", member=0, attempt=1, in_worker=True)
        maybe_inject("spool", member=0, attempt=2, in_worker=True)

    def test_cache_corrupt_overwrites_file(self, monkeypatch, tmp_path):
        target = tmp_path / "entry.pkl"
        target.write_bytes(pickle.dumps({"ok": True}))
        monkeypatch.setenv(ENV_FAULT_SPEC, "cache_corrupt:kind=trees")
        maybe_inject("cache", kind="trees", path=str(target))
        with pytest.raises(Exception):
            pickle.loads(target.read_bytes())
        # Non-matching kind leaves the file alone.
        good = tmp_path / "other.pkl"
        good.write_bytes(pickle.dumps(1))
        maybe_inject("cache", kind="demands", path=str(good))
        assert pickle.loads(good.read_bytes()) == 1

    def test_injected_fault_is_not_a_repro_error(self):
        from repro.errors import ReproError

        assert not issubclass(InjectedFaultError, ReproError)
