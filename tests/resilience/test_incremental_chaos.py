"""Chaos coverage of the incremental warm path.

The ``subtree_tables`` tier must obey the same recovery discipline as
every other cache kind: a corrupted disk entry is *just a miss* — the
table is rebuilt from scratch and the warm solve stays bit-identical to
the cold one.  A worker crash mid-ensemble must likewise retry into the
exact same placement with the memo engaged.
"""

import numpy as np
import pytest

from repro import SolverConfig, solve_hgp
from repro.cache import configure_cache, get_cache, reset_cache
from repro.core.resilience import ResilienceConfig, RetryPolicy

SPECS = [
    "worker_crash:member=1:attempt=1",
    "cache_corrupt:kind=subtree_tables",
]


@pytest.fixture(autouse=True)
def own_cache():
    """These tests reconfigure the process cache: always restore it."""
    yield
    reset_cache()


def _tolerant_config() -> SolverConfig:
    return SolverConfig(
        seed=3,
        n_trees=4,
        refine=False,
        n_jobs=2,
        resilience=ResilienceConfig(
            retry=RetryPolicy(max_attempts=3, base_delay=0.0),
            member_timeout_s=10.0,
        ),
    )


@pytest.mark.parametrize("spec", SPECS)
def test_incremental_recovery_is_bit_identical(
    spec, instance, fault_env, tmp_path
):
    g, hier, d = instance
    disk = str(tmp_path / "cache")

    # Cold, fault-free baseline; the memo writes every subtree table to
    # the disk tier as a side effect.
    configure_cache(disk_dir=disk)
    baseline = solve_hgp(g, hier, d, _tolerant_config())
    assert get_cache().disk_stats()["by_kind"].get("subtree_tables")

    # Fresh memory tier over the same disk dir (a new process,
    # conceptually): warm lookups must go through disk — exactly where
    # ``cache_corrupt`` fires — while the fault spec is live.
    configure_cache(disk_dir=disk)
    fault_env(spec)
    recovered = solve_hgp(g, hier, d, _tolerant_config())

    assert recovered.cost == baseline.cost
    assert np.array_equal(
        recovered.placement.leaf_of, baseline.placement.leaf_of
    )
    report = recovered.report()
    assert not report.degraded
    assert report.meta.get("incremental") is True


def test_corrupt_subtree_entries_are_dropped_and_rebuilt(
    instance, fault_env, tmp_path
):
    """After recovery the corrupted files are gone, and a fault-free
    rerun repopulates the tier (the PR-3 corrupt-entry discipline)."""
    g, hier, d = instance
    disk = str(tmp_path / "cache")
    configure_cache(disk_dir=disk)
    solve_hgp(g, hier, d, _tolerant_config())
    before = get_cache().disk_stats()["by_kind"]["subtree_tables"]["files"]
    assert before > 0

    configure_cache(disk_dir=disk)
    fault_env("cache_corrupt:kind=subtree_tables")
    solve_hgp(g, hier, d, _tolerant_config())

    # Every touched entry was corrupted at read time and dropped; the
    # rebuild re-stored it, so the inventory is intact and loadable.
    fault_env("")
    configure_cache(disk_dir=disk)
    after = solve_hgp(g, hier, d, _tolerant_config())
    assert after.cost == pytest.approx(after.cost)
    assert get_cache().stats.disk_hits > 0
