"""Metric-total exactness under faults.

The resilience contract for observability: a run that recovers from
injected faults must leave the parent registry's ``repro_dp_*`` totals
identical to a fault-free run.  That pins down two design decisions in
the delta-merge path:

* failed attempts' worker-side increments are deliberately dropped (the
  crashed/hung worker's delta never reaches the parent; the successful
  retry's delta is the single source of truth), and
* the serial in-process fallback increments the parent registry
  directly and ships no delta, so nothing is counted twice.
"""

import pytest

from repro import SolverConfig, solve_hgp
from repro.core.resilience import ResilienceConfig, RetryPolicy
from repro.obs.metrics import get_registry


def _dp_solves() -> float:
    family = get_registry().get("repro_dp_solves_total")
    return 0.0 if family is None else family.value()


def _config(max_attempts: int, timeout=None) -> SolverConfig:
    return SolverConfig(
        seed=3,
        n_trees=8,
        refine=False,
        n_jobs=4,
        resilience=ResilienceConfig(
            retry=RetryPolicy(max_attempts=max_attempts, base_delay=0.0),
            member_timeout_s=timeout,
        ),
    )


def _solve_counting(instance, cfg) -> float:
    g, hier, d = instance
    before = _dp_solves()
    solve_hgp(g, hier, d, cfg)
    return _dp_solves() - before


class TestMetricTotalsUnderFaults:
    def test_pool_run_counts_every_member(self, instance, fault_env):
        added = _solve_counting(instance, _config(max_attempts=1))
        assert added >= 8  # one DP solve per ensemble member, minimum

    def test_crash_recovery_totals_match_fault_free(self, instance, fault_env):
        """restart_pool recovery: the retried wave's deltas still arrive."""
        cfg = _config(max_attempts=3)
        clean = _solve_counting(instance, cfg)
        fault_env("worker_crash:member=2:attempt=1")
        faulted = _solve_counting(instance, cfg)
        assert faulted == pytest.approx(clean)

    def test_serial_fallback_totals_match_fault_free(self, instance, fault_env):
        """max_attempts=2 sends the retry through the serial in-process
        fallback, which must count once (directly), not twice."""
        cfg = _config(max_attempts=2)
        clean = _solve_counting(instance, cfg)
        fault_env("worker_crash:member=2:attempt=1")
        faulted = _solve_counting(instance, cfg)
        assert faulted == pytest.approx(clean)

    def test_hang_recovery_totals_match_fault_free(self, instance, fault_env):
        cfg = _config(max_attempts=3, timeout=10.0)
        clean = _solve_counting(instance, cfg)
        fault_env("worker_hang:member=1:attempt=1:seconds=600")
        faulted = _solve_counting(instance, cfg)
        assert faulted == pytest.approx(clean)
