"""Chaos tests for the resilience layer: retries, deadlines, degradation.

Every recovery assertion here is paired with a determinism assertion —
a run that survives injected faults must produce *bit-identical* costs
and placements to an undisturbed run, because retried members re-solve
the same tree on the same grid.
"""

import numpy as np
import pytest

from repro import SolverConfig, solve_hgp
from repro.core import pool as worker_pool
from repro.core.resilience import ResilienceConfig, RetryPolicy
from repro.errors import DegradedRunError, InvalidInputError
from repro.obs.metrics import get_registry
from repro.testing.faults import InjectedFaultError


def _counter_value(name: str, **labels) -> float:
    counter = get_registry().counter(
        name, "", labelnames=tuple(sorted(labels)) if labels else ()
    )
    return counter.value(**labels)


def _solve(instance, cfg):
    g, hier, d = instance
    return solve_hgp(g, hier, d, cfg)


def _config(**resilience) -> SolverConfig:
    return SolverConfig(
        seed=3,
        n_trees=8,
        refine=False,
        n_jobs=4,
        resilience=ResilienceConfig(**resilience),
    )


class TestRetryPolicy:
    def test_defaults_are_off(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 1
        cfg = ResilienceConfig()
        assert cfg.member_timeout_s is None
        assert not cfg.allow_partial
        assert cfg.min_members == 1

    def test_deterministic_backoff_schedule(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1)
        assert policy.delay(1) == 0.0
        assert policy.delay(2) == pytest.approx(0.1)
        assert policy.delay(3) == pytest.approx(0.2)
        assert policy.delay(4) == pytest.approx(0.4)

    @pytest.mark.parametrize(
        "kwargs",
        [{"max_attempts": 0}, {"max_attempts": -1}, {"base_delay": -0.1}],
    )
    def test_rejects_bad_policy(self, kwargs):
        with pytest.raises(InvalidInputError):
            RetryPolicy(**kwargs)

    @pytest.mark.parametrize(
        "kwargs", [{"member_timeout_s": 0.0}, {"member_timeout_s": -1.0},
                   {"min_members": 0}]
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(InvalidInputError):
            ResilienceConfig(**kwargs)


class TestCrashRecovery:
    def test_worker_crash_recovers_bit_identical(self, instance, fault_env):
        baseline = _solve(instance, _config())

        fault_env("worker_crash:member=2:attempt=1")
        restarts0 = _counter_value("repro_pool_restarts_total")
        retries0 = _counter_value("repro_member_retries_total")
        result = _solve(
            instance, _config(retry=RetryPolicy(max_attempts=3, base_delay=0.0))
        )

        assert result.cost == baseline.cost
        assert np.array_equal(
            result.placement.leaf_of, baseline.placement.leaf_of
        )
        assert _counter_value("repro_pool_restarts_total") == restarts0 + 1
        assert _counter_value("repro_member_retries_total") > retries0
        report = result.report()
        assert not report.degraded
        assert len(report.members) == 8
        attempts = {m.index: m.attempts for m in report.members}
        assert attempts[2] == 2  # the crashed member was re-run once

    def test_spool_corruption_recovers(self, instance, fault_env):
        baseline = _solve(instance, _config())
        fault_env("spool_corrupt:attempt=1")
        result = _solve(
            instance, _config(retry=RetryPolicy(max_attempts=2, base_delay=0.0))
        )
        assert result.cost == baseline.cost
        assert not result.report().degraded


class TestHangRecovery:
    def test_deadline_terminates_hung_worker(self, instance, fault_env):
        baseline = _solve(instance, _config())
        fault_env("worker_hang:member=1:attempt=1:seconds=600")
        restarts0 = _counter_value("repro_pool_restarts_total")
        result = _solve(
            instance,
            _config(
                retry=RetryPolicy(max_attempts=2, base_delay=0.0),
                member_timeout_s=5.0,
            ),
        )
        assert result.cost == baseline.cost
        assert _counter_value("repro_pool_restarts_total") == restarts0 + 1
        attempts = {m.index: m.attempts for m in result.report().members}
        assert attempts[1] == 2


class TestDegradation:
    def test_allow_partial_completes_on_survivors(self, instance, fault_env):
        fault_env("member_error:member=5")
        failures0 = _counter_value("repro_member_failures_total", kind="error")
        result = _solve(
            instance,
            _config(
                retry=RetryPolicy(max_attempts=2, base_delay=0.0),
                allow_partial=True,
                min_members=4,
            ),
        )
        report = result.report()
        assert report.degraded
        assert len(report.members) == 7  # exactly one member lost
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.kind == "error"
        assert failure.attempts == 2
        assert failure.index == 5
        assert "InjectedFaultError" in failure.message
        assert failure.traceback_digest
        assert (
            _counter_value("repro_member_failures_total", kind="error")
            == failures0 + 1
        )

    def test_partial_forbidden_raises_with_partial_outcomes(
        self, instance, fault_env
    ):
        fault_env("member_error:member=5")
        with pytest.raises(DegradedRunError) as info:
            _solve(
                instance,
                _config(retry=RetryPolicy(max_attempts=2, base_delay=0.0)),
            )
        exc = info.value
        assert len(exc.outcomes) == 7
        assert len(exc.failures) == 1
        assert exc.failures[0].kind == "error"

    def test_min_members_floor_is_enforced(self, instance, fault_env):
        fault_env("member_error:member=5")
        with pytest.raises(DegradedRunError):
            _solve(
                instance,
                _config(
                    retry=RetryPolicy(max_attempts=2, base_delay=0.0),
                    allow_partial=True,
                    min_members=8,  # losing any member violates the floor
                ),
            )

    def test_degraded_report_round_trips_through_json(self, instance, fault_env):
        from repro.core.telemetry import RunReport

        fault_env("member_error:member=5")
        result = _solve(
            instance,
            _config(
                retry=RetryPolicy(max_attempts=2, base_delay=0.0),
                allow_partial=True,
            ),
        )
        report = result.report()
        loaded = RunReport.from_json(report.to_json())
        assert loaded.degraded
        assert [f.to_dict() for f in loaded.failures] == [
            f.to_dict() for f in report.failures
        ]

    def test_report_show_surfaces_failures(
        self, instance, fault_env, tmp_path, capsys
    ):
        from repro.cli import main

        fault_env("member_error:member=5")
        result = _solve(
            instance,
            _config(
                retry=RetryPolicy(max_attempts=2, base_delay=0.0),
                allow_partial=True,
            ),
        )
        path = tmp_path / "degraded.json"
        path.write_text(result.report().to_json())
        assert main(["report", "show", str(path)]) == 0
        out = capsys.readouterr().out
        assert "DEGRADED" in out
        assert "failed members (1)" in out
        assert "error" in out


class TestDefaultsOff:
    def test_serial_error_propagates_raw(self, instance, fault_env):
        # Default policy (no retries, no degradation): a serial member
        # error escapes exactly as it did before the resilience layer.
        fault_env("member_error:member=0")
        g, hier, d = instance
        with pytest.raises(InjectedFaultError):
            solve_hgp(g, hier, d, SolverConfig(seed=3, n_trees=2, refine=False))

    def test_healthy_run_matches_serial(self, instance, fault_env):
        g, hier, d = instance
        serial = solve_hgp(
            g, hier, d, SolverConfig(seed=3, n_trees=4, refine=False)
        )
        resilient = solve_hgp(
            g,
            hier,
            d,
            SolverConfig(
                seed=3,
                n_trees=4,
                refine=False,
                n_jobs=2,
                resilience=ResilienceConfig(
                    retry=RetryPolicy(max_attempts=3),
                    member_timeout_s=60.0,
                ),
            ),
        )
        assert resilient.cost == serial.cost
        assert np.array_equal(
            resilient.placement.leaf_of, serial.placement.leaf_of
        )
        assert all(m.attempts == 1 for m in resilient.report().members)

    def test_no_spool_files_leak_after_recovery(self, instance, fault_env):
        fault_env("worker_crash:member=0:attempt=1")
        _solve(
            instance, _config(retry=RetryPolicy(max_attempts=2, base_delay=0.0))
        )
        assert worker_pool.live_generations() == 0


class TestCliResilience:
    @pytest.fixture
    def graph_file(self, tmp_path):
        from repro.graph.generators import planted_partition
        from repro.graph.io import write_edgelist

        g = planted_partition(2, 6, 0.8, 0.1, seed=1)
        path = tmp_path / "g.edges"
        write_edgelist(path, g)
        return path

    def _args(self, path, *extra):
        return [
            "solve",
            "--graph",
            str(path),
            "--degrees",
            "2,2",
            "--cm",
            "5,1,0",
            "--n-trees",
            "4",
            "--quiet",
            "--no-cache",
            *extra,
        ]

    def test_degraded_run_exits_3(self, graph_file, fault_env, capsys):
        from repro.cli import main

        fault_env("member_error:member=1")
        rc = main(self._args(graph_file, "--retries", "1", "--retry-delay", "0"))
        assert rc == 3
        assert "failed terminally" in capsys.readouterr().err

    def test_allow_partial_completes_with_warning(
        self, graph_file, fault_env, capsys
    ):
        from repro.cli import main

        fault_env("member_error:member=1")
        rc = main(
            self._args(
                graph_file,
                "--retries",
                "1",
                "--retry-delay",
                "0",
                "--allow-partial",
            )
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "degraded run" in captured.err
        assert "cost=" in captured.out
