"""Fixtures for the placement-service tests.

Servers run in-process (IO loop + dispatcher threads inside the test
process) on an ephemeral port, with a deliberately tiny solver config so
each solve is a few tens of milliseconds.  The global solver cache is
reset around every server so response-cache hits never leak between
tests, and the fault-spec env var is cleared on entry so the suite is
deterministic even under the CI chaos matrix (chaos coverage lives in
``test_chaos.py``, which opts back in per-test).
"""

from __future__ import annotations

import pytest

from repro.cache import reset_cache
from repro.core import pool as worker_pool
from repro.core.config import SolverConfig
from repro.core.resilience import ResilienceConfig, RetryPolicy
from repro.graph.generators import planted_partition, random_demands
from repro.hierarchy.hierarchy import Hierarchy
from repro.serve import PlacementClient, PlacementServer, ServeConfig
from repro.testing.faults import ENV_FAULT_SPEC

DEGREES = [2, 4]
CM = [10.0, 3.0, 0.0]


def tiny_solver(**overrides) -> SolverConfig:
    """The fast solver config every serve test uses (pool path)."""
    base = dict(
        seed=3,
        n_trees=2,
        n_jobs=2,
        resilience=ResilienceConfig(retry=RetryPolicy(max_attempts=2)),
    )
    base.update(overrides)
    return SolverConfig(**base)


def make_payload(seed: int = 5, n: int = 24) -> dict:
    """One solvable JSON request payload (distinct per ``seed``)."""
    hier = Hierarchy(DEGREES, CM)
    g = planted_partition(4, max(2, n // 4), 0.85, 0.05, seed=seed)
    d = random_demands(g.n, hier.total_capacity, fill=0.5, skew=0.3, seed=seed)
    return {
        "graph": {
            "n": g.n,
            "edges": [
                [int(u), int(v), float(w)]
                for u, v, w in zip(g.edges_u, g.edges_v, g.edges_w)
            ],
        },
        "hierarchy": {"degrees": DEGREES, "cm": CM, "leaf_capacity": 1.0},
        "demands": [float(x) for x in d],
    }


@pytest.fixture
def payload() -> dict:
    return make_payload()


@pytest.fixture
def clean_env(monkeypatch):
    """Fault-free, cold-cache baseline for every serve test."""
    monkeypatch.delenv(ENV_FAULT_SPEC, raising=False)
    reset_cache()
    yield
    reset_cache()


def start_server(**config_overrides) -> PlacementServer:
    defaults = dict(port=0, solver=tiny_solver())
    defaults.update(config_overrides)
    return PlacementServer(ServeConfig(**defaults)).start()


@pytest.fixture
def server(clean_env):
    """A started server + client; drained (never leaked) on teardown."""
    srv = start_server()
    try:
        yield srv, PlacementClient(srv.url, timeout=60.0)
    finally:
        srv.drain(timeout=30.0)


@pytest.fixture
def fault_env(monkeypatch):
    """Chaos-test hook: set the fault spec with pool-safe ordering."""

    def _set(spec: str) -> None:
        worker_pool.shutdown_pool()
        if spec:
            monkeypatch.setenv(ENV_FAULT_SPEC, spec)
        else:
            monkeypatch.delenv(ENV_FAULT_SPEC, raising=False)

    _set("")
    reset_cache()
    yield _set
    worker_pool.shutdown_pool()
    reset_cache()
