"""Unit tests for the bounded two-lane admission queue."""

from __future__ import annotations

import threading

import pytest

from repro.errors import InvalidInputError
from repro.serve import LANES, AdmissionQueue


class FakeClock:
    """Deterministic virtual time for the aging tests."""

    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def test_lanes_constant():
    assert LANES == ("interactive", "batch")


def test_validation():
    with pytest.raises(InvalidInputError):
        AdmissionQueue(capacity=0)
    with pytest.raises(InvalidInputError):
        AdmissionQueue(capacity=4, batch_capacity=0)
    with pytest.raises(InvalidInputError):
        AdmissionQueue(age_promote_s=0.0)
    q = AdmissionQueue(capacity=2)
    with pytest.raises(InvalidInputError):
        q.offer("x", "express")


def test_offer_take_fifo_within_lane():
    q = AdmissionQueue(capacity=8)
    for i in range(4):
        assert q.offer(i, "interactive")
    got = [q.take(timeout=0.1)[2] for _ in range(4)]
    assert got == [0, 1, 2, 3]
    assert q.take(timeout=0.01) is None


def test_bounded_shed_when_full():
    q = AdmissionQueue(capacity=2, batch_capacity=1)
    assert q.offer("a", "interactive")
    assert q.offer("b", "interactive")
    assert not q.offer("c", "interactive")  # interactive lane full
    assert q.offer("d", "batch")
    assert not q.offer("e", "batch")  # batch lane full
    assert q.depth("interactive") == 2
    assert q.depth("batch") == 1
    assert q.depth() == 3
    assert q.shed == 2
    assert q.offered == 5
    # Draining one slot re-opens admission for that lane only.
    q.take(timeout=0.1)
    assert q.offer("f", "interactive")
    assert not q.offer("g", "batch")


def test_interactive_served_first():
    q = AdmissionQueue(capacity=8)
    q.offer("b1", "batch")
    q.offer("i1", "interactive")
    q.offer("b2", "batch")
    q.offer("i2", "interactive")
    order = [q.take(timeout=0.1)[0] for _ in range(4)]
    assert order == ["interactive", "interactive", "batch", "batch"]


def test_aging_promotes_batch_head():
    clock = FakeClock()
    q = AdmissionQueue(capacity=8, age_promote_s=2.0, clock=clock)
    q.offer("b1", "batch")
    clock.advance(1.0)
    q.offer("i1", "interactive")
    # Batch not old enough yet: interactive wins.
    lane, _, item = q.take(timeout=0.1)
    assert (lane, item) == ("interactive", "i1")
    q.offer("i2", "interactive")
    clock.advance(1.5)  # batch head is now 2.5s old -> promoted
    lane, _, item = q.take(timeout=0.1)
    assert (lane, item) == ("batch", "b1")
    assert q.promotions == 1


def test_promotion_counter_only_when_jumping_queue():
    clock = FakeClock()
    q = AdmissionQueue(capacity=8, age_promote_s=1.0, clock=clock)
    q.offer("b1", "batch")
    clock.advance(5.0)
    # No interactive traffic waiting: serving old batch is not a "jump".
    assert q.take(timeout=0.1)[2] == "b1"
    assert q.promotions == 0


def test_take_reports_enqueue_time():
    clock = FakeClock()
    q = AdmissionQueue(capacity=4, clock=clock)
    clock.advance(10.0)
    q.offer("x", "interactive")
    clock.advance(3.0)
    lane, enqueued_at, item = q.take(timeout=0.1)
    assert enqueued_at == 10.0
    assert clock() - enqueued_at == 3.0


def test_close_sheds_new_but_drains_queued():
    q = AdmissionQueue(capacity=4)
    q.offer("a", "interactive")
    q.offer("b", "batch")
    q.close()
    assert q.closed
    assert not q.offer("c", "interactive")  # shed after close
    assert q.take(timeout=0.1)[2] == "a"  # queued items still served
    assert q.take(timeout=0.1)[2] == "b"
    assert q.take(timeout=0.1) is None  # closed-and-empty
    assert q.take() is None  # even a blocking take returns


def test_take_blocks_until_offer():
    q = AdmissionQueue(capacity=4)
    got = []

    def taker():
        got.append(q.take(timeout=5.0))

    th = threading.Thread(target=taker)
    th.start()
    q.offer("late", "batch")
    th.join(timeout=5.0)
    assert not th.is_alive()
    assert got and got[0][2] == "late"
