"""Hypothesis invariants for the admission queue (satellite of PR 10).

A random op sequence (offers on either lane, takes, clock advances) is
replayed against a reference model, checking the four contract
invariants on every step:

1. **Bounded** — a lane's depth never exceeds its capacity.
2. **Shed iff full** — ``offer`` returns ``False`` exactly when the
   target lane is at capacity (or the queue is closed), never sooner.
3. **FIFO within a lane** — items leave each lane in arrival order.
4. **Aging** — a batch head older than ``age_promote_s`` is served
   before interactive traffic; otherwise interactive goes first.

Virtual time (an injectable clock) makes the aging invariant exact
rather than sleep-flaky.
"""

from __future__ import annotations

from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import AdmissionQueue

AGE = 5.0


class Model:
    """Reference semantics, mirroring the docstring contract."""

    def __init__(self, cap_i: int, cap_b: int):
        self.cap = {"interactive": cap_i, "batch": cap_b}
        self.lanes = {"interactive": deque(), "batch": deque()}

    def offer(self, now: float, item, lane: str) -> bool:
        if len(self.lanes[lane]) >= self.cap[lane]:
            return False
        self.lanes[lane].append((now, item))
        return True

    def take(self, now: float):
        batch = self.lanes["batch"]
        inter = self.lanes["interactive"]
        if batch and now - batch[0][0] >= AGE:
            return ("batch",) + batch.popleft()
        if inter:
            return ("interactive",) + inter.popleft()
        if batch:
            return ("batch",) + batch.popleft()
        return None


ops = st.lists(
    st.one_of(
        st.tuples(st.just("offer"), st.sampled_from(["interactive", "batch"])),
        st.tuples(st.just("take"), st.none()),
        st.tuples(
            st.just("tick"), st.floats(min_value=0.1, max_value=4.0)
        ),
    ),
    min_size=1,
    max_size=60,
)


@given(
    ops=ops,
    cap_i=st.integers(min_value=1, max_value=5),
    cap_b=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=120, deadline=None)
def test_queue_matches_reference_model(ops, cap_i, cap_b):
    clock_now = [0.0]
    q = AdmissionQueue(
        capacity=cap_i,
        batch_capacity=cap_b,
        age_promote_s=AGE,
        clock=lambda: clock_now[0],
    )
    model = Model(cap_i, cap_b)
    counter = 0
    for op, arg in ops:
        if op == "tick":
            clock_now[0] += arg
            continue
        if op == "offer":
            counter += 1
            admitted = q.offer(counter, arg)
            expected = model.offer(clock_now[0], counter, arg)
            # Invariant 2: shed exactly when the model's lane is full.
            assert admitted == expected
        else:
            got = q.take(timeout=0.0)
            want = model.take(clock_now[0])
            if want is None:
                assert got is None
            else:
                # Invariants 3 + 4: same lane, same item, same
                # enqueue stamp as the reference model.
                assert got == want
        # Invariant 1: bound holds after every op.
        assert q.depth("interactive") <= cap_i
        assert q.depth("batch") <= cap_b


@given(
    n_batch=st.integers(min_value=1, max_value=4),
    n_inter=st.integers(min_value=1, max_value=4),
    age=st.floats(min_value=0.0, max_value=12.0),
)
@settings(max_examples=60, deadline=None)
def test_aging_promotes_iff_older_than_threshold(n_batch, n_inter, age):
    clock_now = [0.0]
    q = AdmissionQueue(
        capacity=10, age_promote_s=AGE, clock=lambda: clock_now[0]
    )
    for i in range(n_batch):
        q.offer(("b", i), "batch")
    clock_now[0] += age
    for i in range(n_inter):
        q.offer(("i", i), "interactive")
    lane, _, item = q.take(timeout=0.0)
    if age >= AGE:
        assert (lane, item) == ("batch", ("b", 0))
        assert q.promotions == 1
    else:
        assert (lane, item) == ("interactive", ("i", 0))
        assert q.promotions == 0


@given(seq=st.lists(st.sampled_from(["interactive", "batch"]), max_size=30))
@settings(max_examples=60, deadline=None)
def test_fifo_within_each_lane(seq):
    q = AdmissionQueue(capacity=len(seq) + 1)
    for i, lane in enumerate(seq):
        assert q.offer(i, lane)
    out = {"interactive": [], "batch": []}
    while True:
        got = q.take(timeout=0.0)
        if got is None:
            break
        out[got[0]].append(got[2])
    for lane in out:
        wanted = [i for i, item_lane in enumerate(seq) if item_lane == lane]
        assert out[lane] == wanted
