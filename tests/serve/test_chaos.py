"""Fault-injection tests for the serving layer.

Each test opts into one ``REPRO_FAULT_SPEC`` and asserts the server
degrades the way the runbook promises: worker crashes retry invisibly
(bit-identical results), floods shed 503, slow clients burn a read
deadline instead of a dispatcher slot, and hung workers turn into 504s
bounded by the request deadline.
"""

from __future__ import annotations

import time

import pytest

from repro.serve import PlacementClient

from .conftest import make_payload, start_server


@pytest.fixture
def chaos_server(fault_env):
    """Started server whose *workers* fork after the fault spec is set."""

    def _start(spec: str, **overrides):
        fault_env(spec)
        srv = start_server(**overrides)
        return srv, PlacementClient(srv.url, timeout=120.0)

    created = []

    def factory(spec: str, **overrides):
        pair = _start(spec, **overrides)
        created.append(pair[0])
        return pair

    yield factory
    for srv in created:
        srv.drain(timeout=30.0)


def test_worker_crash_recovers_bit_identical(chaos_server, fault_env):
    payload = make_payload(seed=21)
    payload["deadline_s"] = 120.0

    # Reference: fault-free solve through a clean server.
    srv, client = chaos_server("")
    ref = client.solve_raw(payload)
    assert ref.status == 200
    srv.drain(timeout=30.0)

    # Same request with every worker crashing on its 3rd member visit:
    # retries + pool restarts must make the failure invisible.
    srv2, client2 = chaos_server("worker_crash:every=3")
    got = client2.solve_raw(payload)
    assert got.status == 200
    assert got.json()["cost"] == ref.json()["cost"]
    assert got.json()["leaf_of"] == ref.json()["leaf_of"]


def test_worker_crash_storm_never_kills_server(chaos_server):
    srv, client = chaos_server("worker_crash:every=4")
    codes = []
    for i in range(6):
        payload = make_payload(seed=30 + i)
        payload["deadline_s"] = 120.0
        codes.append(client.solve_raw(payload).status)
    # Every request is answered (no transport errors raised above) and
    # the healthz endpoint still works — the server survived the storm.
    assert all(c in (200, 504, 500) for c in codes)
    assert codes.count(200) >= 4  # retries recover the vast majority
    assert client.healthz().status == 200


def test_serve_flood_sheds_503_not_crash(chaos_server):
    srv, client = chaos_server("serve_flood")
    payload = make_payload(seed=40)
    resp = client.solve_raw(payload)
    assert resp.status == 503
    assert resp.served_from == "shed"
    assert resp.retry_after_s is not None
    assert client.healthz().status == 200


def test_serve_flood_every_n_partial_shed(chaos_server, fault_env):
    srv, client = chaos_server("serve_flood:every=2")
    codes = [
        client.solve_raw(make_payload(seed=50 + i)).status for i in range(4)
    ]
    assert 503 in codes and 200 in codes
    assert client.healthz().status == 200


def test_slow_client_gets_408_without_blocking_others(chaos_server, fault_env):
    srv, client = chaos_server("", read_timeout_s=0.3)
    payload = make_payload(seed=60)

    # The slow-loris client stalls 2s between head and body; the server
    # must cut it off at the 0.3s read deadline with a 408.
    fault_env("serve_slow_client:seconds=2")
    t0 = time.monotonic()
    resp = client.solve_raw(payload)
    elapsed = time.monotonic() - t0
    assert resp.status == 408
    assert elapsed < 5.0

    # A well-behaved client is unaffected afterwards.
    fault_env("")
    assert client.solve_raw(payload).status == 200


def test_worker_hang_is_bounded_by_deadline(chaos_server):
    srv, client = chaos_server("worker_hang:seconds=600")
    payload = make_payload(seed=70)
    payload["deadline_s"] = 2.0
    t0 = time.monotonic()
    resp = client.solve_raw(payload)
    elapsed = time.monotonic() - t0
    assert resp.status == 504
    assert resp.json().get("stage") in ("queue", "wait", "solve")
    # Request lifetime ~ deadline + wait grace, never the hang duration.
    assert elapsed < 10.0
