"""Coalescing invariants: registry unit tests, threaded races, and the
end-to-end guarantee — N byte-identical concurrent requests cost one
solve and receive byte-identical responses (satellite of PR 10)."""

from __future__ import annotations

import concurrent.futures as cf
import json
import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import InflightRegistry

from .conftest import start_server
from repro.serve import PlacementClient


# ----------------------------------------------------------------------
# registry unit behavior
# ----------------------------------------------------------------------


def test_single_leader_then_followers():
    reg = InflightRegistry()
    leader, entry = reg.claim("k")
    assert leader
    f1, e1 = reg.claim("k")
    f2, e2 = reg.claim("k")
    assert not f1 and not f2
    assert e1 is entry and e2 is entry
    assert reg.coalesced_total == 2
    waiter_a = entry.subscribe()
    waiter_b = entry.subscribe()
    assert not waiter_a.done()
    n = reg.resolve("k", "value")
    assert n == 2  # both subscribed waiters were delivered to
    assert waiter_a.result(timeout=1.0) == "value"
    assert waiter_b.result(timeout=1.0) == "value"
    # Key is gone: the next claim starts a fresh flight.
    leader2, entry2 = reg.claim("k")
    assert leader2 and entry2 is not entry


def test_subscribe_after_resolve_gets_value_immediately():
    reg = InflightRegistry()
    _, entry = reg.claim("k")
    reg.resolve("k", 42)
    assert entry.subscribe().result(timeout=1.0) == 42
    assert entry.resolved


def test_cancelled_subscriber_does_not_poison_others():
    reg = InflightRegistry()
    _, entry = reg.claim("k")
    dead = entry.subscribe()
    alive = entry.subscribe()
    dead.cancel()
    reg.resolve("k", "payload")
    assert alive.result(timeout=1.0) == "payload"


def test_distinct_keys_are_independent():
    reg = InflightRegistry()
    assert reg.claim("a")[0]
    assert reg.claim("b")[0]
    assert reg.inflight() == 2
    reg.resolve("a", 1)
    assert reg.inflight() == 1


# ----------------------------------------------------------------------
# threaded race: exactly one leader per key, everyone gets the value
# ----------------------------------------------------------------------


@given(
    n_threads=st.integers(min_value=2, max_value=16),
    n_keys=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=25, deadline=None)
def test_exactly_one_leader_under_contention(n_threads, n_keys):
    """All contenders claim before any leader resolves: then each key
    must elect exactly one leader and fan its value to everyone."""
    reg = InflightRegistry()
    barrier = threading.Barrier(n_threads)
    all_claimed = threading.Event()
    claimed = [0]
    results = []
    lock = threading.Lock()

    def contender(i):
        key = f"key-{i % n_keys}"
        barrier.wait()
        leader, entry = reg.claim(key)
        with lock:
            claimed[0] += 1
            if claimed[0] == n_threads:
                all_claimed.set()
        if leader:
            # Hold the flight open until every contender has claimed, so
            # no late claim can legitimately start a second flight.
            assert all_claimed.wait(timeout=10.0)
            reg.resolve(key, key.upper())
            value = key.upper()
        else:
            value = entry.subscribe().result(timeout=10.0)
        with lock:
            results.append((key, leader, value))

    threads = [
        threading.Thread(target=contender, args=(i,))
        for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=15.0)
    assert len(results) == n_threads
    for k in {r[0] for r in results}:
        rows = [r for r in results if r[0] == k]
        assert sum(1 for r in rows if r[1]) == 1  # one leader per key
        assert all(r[2] == k.upper() for r in rows)  # same value for all


# ----------------------------------------------------------------------
# end-to-end: concurrent identical requests -> one solve, N identical
# ----------------------------------------------------------------------


def test_n_identical_requests_one_solve(clean_env, payload):
    n = 8
    srv = start_server(cache_responses=False)
    try:
        solves = []
        real_solve = srv._solve_job

        def counting_solve(job):
            solves.append(job.key)
            return real_solve(job)

        srv._solve_job = counting_solve
        client_payload = dict(payload)
        client_payload["deadline_s"] = 60.0
        start = threading.Barrier(n)

        def submit(i):
            start.wait()
            client = PlacementClient(srv.url, timeout=60.0)
            return client.solve_raw(client_payload)

        with cf.ThreadPoolExecutor(max_workers=n) as tp:
            responses = list(tp.map(submit, range(n)))

        assert [r.status for r in responses] == [200] * n
        # Exactly one solve reached the dispatcher...
        assert len(solves) == 1
        # ...every response body is byte-identical...
        assert len({r.body for r in responses}) == 1
        # ...and n-1 were marked coalesced.
        froms = sorted(r.served_from for r in responses)
        assert froms.count("coalesced") == n - 1
        assert froms.count("solve") == 1
        assert srv._inflight.coalesced_total == n - 1
        body = json.loads(responses[0].body)
        assert len(body["leaf_of"]) == payload["graph"]["n"]
    finally:
        srv.drain(timeout=30.0)


def test_different_slo_same_instance_still_coalesces(clean_env, payload):
    """Deadline/priority are SLO-only: they must not split the flight."""
    srv = start_server(cache_responses=False)
    try:
        variants = []
        for deadline, priority in ((30.0, "interactive"), (60.0, "batch")):
            p = dict(payload)
            p["deadline_s"] = deadline
            p["priority"] = priority
            variants.append(p)
        start = threading.Barrier(len(variants))

        def submit(p):
            start.wait()
            return PlacementClient(srv.url, timeout=60.0).solve_raw(p)

        with cf.ThreadPoolExecutor(max_workers=2) as tp:
            responses = list(tp.map(submit, variants))
        assert [r.status for r in responses] == [200, 200]
        assert len({r.body for r in responses}) == 1
        assert srv._inflight.coalesced_total == 1
    finally:
        srv.drain(timeout=30.0)
