"""Shutdown-ordering regressions (satellite 1 of PR 10).

The atexit teardown must run in dependency order: registered shutdown
hooks first (newest first — stop serving, drain in-flight solves), then
the pool, then the generation spool sweep.  The flagship regression:
SIGTERM during an in-flight solve leaves no orphaned
``repro-gen-*.pkl`` spool files behind.
"""

from __future__ import annotations

import glob
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

import pytest

from repro.core import pool as worker_pool

REPO_ROOT = Path(__file__).resolve().parents[2]

from .conftest import make_payload  # noqa: E402


# ----------------------------------------------------------------------
# hook registry unit behavior
# ----------------------------------------------------------------------


def test_hooks_run_lifo_before_pool_shutdown(monkeypatch):
    order = []
    monkeypatch.setattr(
        worker_pool, "shutdown_pool", lambda: order.append("pool")
    )
    worker_pool.register_shutdown_hook("first", lambda: order.append("first"))
    worker_pool.register_shutdown_hook("second", lambda: order.append("second"))
    try:
        worker_pool._cleanup_at_exit()
    finally:
        worker_pool.unregister_shutdown_hook("first")
        worker_pool.unregister_shutdown_hook("second")
    assert order == ["second", "first", "pool"]


def test_hook_errors_do_not_block_pool_shutdown(monkeypatch):
    order = []
    monkeypatch.setattr(
        worker_pool, "shutdown_pool", lambda: order.append("pool")
    )

    def boom():
        order.append("boom")
        raise RuntimeError("hook failed")

    worker_pool.register_shutdown_hook("boom", boom)
    try:
        worker_pool._cleanup_at_exit()
    finally:
        worker_pool.unregister_shutdown_hook("boom")
    assert order == ["boom", "pool"]


def test_register_replaces_same_name(monkeypatch):
    order = []
    monkeypatch.setattr(worker_pool, "shutdown_pool", lambda: None)
    worker_pool.register_shutdown_hook("dup", lambda: order.append("old"))
    worker_pool.register_shutdown_hook("dup", lambda: order.append("new"))
    try:
        worker_pool._cleanup_at_exit()
    finally:
        worker_pool.unregister_shutdown_hook("dup")
    assert order == ["new"]


def test_unregister_is_idempotent():
    worker_pool.register_shutdown_hook("gone", lambda: None)
    worker_pool.unregister_shutdown_hook("gone")
    worker_pool.unregister_shutdown_hook("gone")  # second time: no-op


def test_exporter_registers_and_unregisters_hook():
    from repro.obs.exporter import MetricsExporter

    exporter = MetricsExporter(port=0)
    hook_names = list(worker_pool._SHUTDOWN_HOOKS)
    assert any(name.startswith("exporter:") for name in hook_names)
    exporter.stop()
    assert not any(
        name.startswith("exporter:") for name in worker_pool._SHUTDOWN_HOOKS
    )


def test_server_registers_and_unregisters_hook(tmp_path):
    from .conftest import start_server

    srv = start_server()
    try:
        assert any(
            name.startswith("serve:") for name in worker_pool._SHUTDOWN_HOOKS
        )
    finally:
        srv.drain(timeout=30.0)
    assert not any(
        name.startswith("serve:") for name in worker_pool._SHUTDOWN_HOOKS
    )


# ----------------------------------------------------------------------
# the flagship regression: SIGTERM mid-solve leaves no spool orphans
# ----------------------------------------------------------------------


def _spool_files() -> set:
    return set(glob.glob(os.path.join(tempfile.gettempdir(), "repro-gen-*.pkl")))


@pytest.mark.slow
def test_sigterm_during_inflight_solve_leaves_no_spool_orphans():
    before = _spool_files()
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_FAULT_SPEC", None)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--jobs", "2", "--n-trees", "4", "--seed", "3",
        ],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
        cwd=str(REPO_ROOT),
    )
    try:
        line = proc.stderr.readline()
        assert "listening on" in line, f"server failed to start: {line!r}"
        url = line.strip().split()[-1]

        # A solve big enough to still be in flight when SIGTERM lands.
        payload = make_payload(seed=9, n=96)
        payload["deadline_s"] = 120.0
        body = json.dumps(payload).encode()

        def post():
            req = urllib.request.Request(
                url + "/v1/solve", data=body,
                headers={"Content-Type": "application/json"},
            )
            try:
                urllib.request.urlopen(req, timeout=120)
            except Exception:
                pass  # the drain may close our connection — that's fine

        import threading

        th = threading.Thread(target=post, daemon=True)
        th.start()
        time.sleep(0.5)  # let the request reach the dispatcher
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=60)
        th.join(timeout=10)
        assert rc == 0, f"server exited {rc} instead of draining cleanly"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
    leaked = _spool_files() - before
    assert not leaked, f"orphaned spool files after SIGTERM: {sorted(leaked)}"


@pytest.mark.slow
def test_sigterm_idle_server_exits_clean():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_FAULT_SPEC", None)
    before = _spool_files()
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        env=env, stderr=subprocess.PIPE, text=True, cwd=str(REPO_ROOT),
    )
    try:
        assert "listening on" in proc.stderr.readline()
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
    assert not (_spool_files() - before)
