"""End-to-end tests for the placement server's HTTP surface.

Covers the status-code contract (200/400/404/408/413/503/504), response
caching, header semantics, metrics/stats/healthz endpoints, and the
bit-identity of served results against a direct ``run_pipeline`` call.
"""

from __future__ import annotations

import json
import socket
import time

import numpy as np
import pytest

from repro.core.engine import run_pipeline
from repro.graph.graph import Graph
from repro.hierarchy.hierarchy import Hierarchy
from repro.serve import PlacementClient
from repro.serve.protocol import parse_solve_request, request_cache_key

from .conftest import start_server, tiny_solver


# ----------------------------------------------------------------------
# happy path
# ----------------------------------------------------------------------


def test_solve_matches_direct_pipeline(server, payload):
    srv, client = server
    resp = client.solve_raw({**payload, "deadline_s": 60.0})
    assert resp.status == 200
    assert resp.served_from == "solve"
    body = resp.json()

    g = Graph(payload["graph"]["n"], [tuple(e) for e in payload["graph"]["edges"]])
    hier = Hierarchy(
        payload["hierarchy"]["degrees"],
        payload["hierarchy"]["cm"],
        leaf_capacity=payload["hierarchy"]["leaf_capacity"],
    )
    ref = run_pipeline(
        g, hier, np.asarray(payload["demands"]), tiny_solver(), path="serve"
    )
    assert body["cost"] == ref.cost
    assert body["leaf_of"] == ref.placement.leaf_of.tolist()
    assert body["degraded"] is False
    assert body["failures"] == []
    assert body["n"] == g.n


def test_repeat_request_served_from_cache_byte_identical(server, payload):
    srv, client = server
    first = client.solve_raw(payload)
    second = client.solve_raw(payload)
    assert (first.status, second.status) == (200, 200)
    assert second.served_from == "cache"
    assert second.body == first.body
    assert second.headers["x-repro-cache-key"] == first.headers["x-repro-cache-key"]


def test_want_report_includes_report(server, payload):
    srv, client = server
    resp = client.solve_raw({**payload, "report": True})
    assert resp.status == 200
    body = resp.json()
    assert "report" in body
    assert body["report"]["cost"] == body["cost"]


def test_config_overrides_change_result_key(server, payload):
    srv, client = server
    a = client.solve_raw(payload)
    b = client.solve_raw({**payload, "config": {"seed": 99}})
    assert (a.status, b.status) == (200, 200)
    assert a.headers["x-repro-cache-key"] != b.headers["x-repro-cache-key"]


# ----------------------------------------------------------------------
# endpoints
# ----------------------------------------------------------------------


def test_healthz_metrics_stats_and_404(server, payload):
    srv, client = server
    assert client.healthz().status == 200

    client.solve_raw(payload)
    text = client.metrics()
    assert "repro_serve_requests_total" in text
    assert "repro_serve_responses_total" in text

    stats = client.stats()
    assert stats["draining"] is False
    assert set(stats["queue_depth"]) == {"interactive", "batch"}
    assert stats["offered"] >= 1

    assert client.request("GET", "/nope").status == 404
    assert client.request("POST", "/healthz").status == 404


# ----------------------------------------------------------------------
# input validation -> 400
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "mutate",
    [
        lambda p: p.pop("graph"),
        lambda p: p.pop("hierarchy"),
        lambda p: p.pop("demands"),
        lambda p: p.__setitem__("priority", "urgent"),
        lambda p: p.__setitem__("deadline_s", -1),
        lambda p: p.__setitem__("config", {"n_jobs": 64}),  # not whitelisted
        lambda p: p.__setitem__("demands", [1.0]),  # wrong length
        lambda p: p["graph"].__setitem__("edges", [[0]]),
    ],
)
def test_invalid_request_is_400(server, payload, mutate):
    srv, client = server
    bad = json.loads(json.dumps(payload))
    mutate(bad)
    assert client.solve_raw(bad).status == 400


def test_unparseable_json_is_400(server):
    srv, client = server
    resp = client.request("POST", "/v1/solve", b"{not json")
    assert resp.status == 400


def test_oversized_body_is_413(clean_env, payload):
    srv = start_server(max_body_bytes=1024)
    try:
        client = PlacementClient(srv.url, timeout=30.0)
        assert client.solve_raw(payload).status == 413
    finally:
        srv.drain(timeout=30.0)


def test_slow_client_read_times_out_408(clean_env):
    srv = start_server(read_timeout_s=0.3)
    try:
        port = int(srv.url.rsplit(":", 1)[1])
        with socket.create_connection(("127.0.0.1", port), timeout=10.0) as sock:
            sock.sendall(
                b"POST /v1/solve HTTP/1.1\r\nContent-Length: 100\r\n\r\n"
            )
            # ...and never send the body: the server must give up.
            buf = b""
            while b"\r\n\r\n" not in buf:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                buf += chunk
        assert b" 408 " in buf.split(b"\r\n", 1)[0]
    finally:
        srv.drain(timeout=30.0)


# ----------------------------------------------------------------------
# overload -> 503, deadline -> 504
# ----------------------------------------------------------------------


def test_full_queue_sheds_503_with_retry_after(clean_env, payload, monkeypatch):
    srv = start_server(queue_capacity=1, retry_after_s=7)
    try:
        client = PlacementClient(srv.url, timeout=30.0)
        # Force every admission attempt to shed via the chaos site that
        # models a saturated queue deterministically.
        monkeypatch.setenv("REPRO_FAULT_SPEC", "serve_flood")
        resp = client.solve_raw(payload)
        assert resp.status == 503
        assert resp.served_from == "shed"
        assert resp.retry_after_s == 7
        body = resp.json()
        assert "overloaded" in body["error"]
        monkeypatch.delenv("REPRO_FAULT_SPEC")
        # Recovery: the same request succeeds once pressure is gone.
        assert client.solve_raw(payload).status == 200
    finally:
        srv.drain(timeout=30.0)


def test_expired_deadline_is_504_queue_stage(server, payload):
    srv, client = server
    resp = client.solve_raw({**payload, "deadline_s": 1e-9})
    assert resp.status == 504
    assert "deadline" in resp.json()["error"]


def test_504_body_names_the_stage(server, payload):
    srv, client = server
    resp = client.solve_raw({**payload, "deadline_s": 1e-9})
    assert resp.json().get("stage") in ("queue", "wait", "solve")


# ----------------------------------------------------------------------
# drain
# ----------------------------------------------------------------------


def test_drain_rejects_new_work_and_stops(clean_env, payload):
    srv = start_server()
    client = PlacementClient(srv.url, timeout=30.0)
    assert client.solve_raw(payload).status == 200
    srv.initiate_drain()
    assert client.healthz().status == 503
    resp = client.solve_raw(payload)
    assert resp.status == 503
    assert resp.served_from == "drain"
    srv.drain(timeout=30.0)
    with pytest.raises(Exception):
        client.healthz()


def test_context_manager_drains(clean_env, payload):
    with start_server() as srv:
        client = PlacementClient(srv.url, timeout=30.0)
        assert client.solve_raw(payload).status == 200
    assert srv._drained.is_set()


# ----------------------------------------------------------------------
# protocol unit details
# ----------------------------------------------------------------------


def test_cache_key_ignores_slo_fields(payload):
    base = parse_solve_request(json.dumps(payload).encode())
    slo = parse_solve_request(
        json.dumps(
            {**payload, "deadline_s": 5.0, "priority": "batch",
             "allow_partial": True}
        ).encode()
    )
    assert request_cache_key(base) == request_cache_key(slo)


def test_cache_key_tracks_solve_inputs(payload):
    base = parse_solve_request(json.dumps(payload).encode())
    changed = json.loads(json.dumps(payload))
    changed["demands"][0] += 0.25
    changed["demands"][1] -= 0.25
    other = parse_solve_request(json.dumps(changed).encode())
    assert request_cache_key(base) != request_cache_key(other)


def test_queue_wait_metric_recorded(server, payload):
    srv, client = server
    client.solve_raw(payload)
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        if "repro_serve_queue_wait_seconds" in client.metrics():
            return
        time.sleep(0.05)
    pytest.fail("queue-wait histogram never appeared in /metrics")
