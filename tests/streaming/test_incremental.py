"""Incremental reoptimization: dirty tracking, snapshot reuse, the gate.

Satellite contracts of the warm path:

* ``update_edge`` on an existing edge is a *pure weight update* — the
  next ``live_graph`` keeps the snapshot's structure arrays (asserted
  by identity, not equality) and only regathers weights.
* churn events feed a dirty set; ``reoptimize`` compares its live
  fraction against ``IncrementalConfig.max_dirty_frac`` to pick the
  warm or the full path, and either way produces identical placements.
* ``REPRO_INCREMENTAL`` overrides the config in both directions.
"""

import numpy as np
import pytest

from repro import SolverConfig
from repro.cache import reset_cache
from repro.core.config import IncrementalConfig
from repro.core.engine import incremental_enabled
from repro.errors import InvalidInputError
from repro.streaming.online import OnlinePlacer


@pytest.fixture(autouse=True)
def fresh_cache(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_INCREMENTAL", raising=False)
    reset_cache()
    yield
    reset_cache()


@pytest.fixture
def placer(hier_2x4):
    return OnlinePlacer(
        hier_2x4, config=SolverConfig(n_trees=2, refine=False, seed=0)
    )


def _populate(placer, n=8):
    for t in range(n):
        edges = tuple((j, 1.0) for j in range(t))
        placer.arrive(t, 0.5, edges)


class TestSnapshotReuse:
    def test_weight_update_shares_structure_arrays(self, placer):
        """S2: a pure weight update must not rebuild the snapshot."""
        _populate(placer)
        g1, _d, _leaf, _tasks = placer.live_graph()
        placer.update_edge(0, 1, 5.0)
        g2, _d, _leaf, _tasks = placer.live_graph()
        assert g2 is not g1
        assert g2.edges_u is g1.edges_u
        assert g2.edges_v is g1.edges_v
        assert g2.indptr is g1.indptr
        assert g2.indices is g1.indices
        assert g2.adj_edge_ids is g1.adj_edge_ids

    def test_weight_update_patches_weights(self, placer):
        _populate(placer)
        placer.update_edge(0, 1, 7.5)
        g, _d, _leaf, tasks = placer.live_graph()
        i, j = tasks.index(0), tasks.index(1)
        mask = ((g.edges_u == i) & (g.edges_v == j)) | (
            (g.edges_u == j) & (g.edges_v == i)
        )
        assert g.edges_w[mask] == pytest.approx([7.5])

    def test_unchanged_placer_returns_same_snapshot_object(self, placer):
        _populate(placer)
        g1 = placer.live_graph()[0]
        g2 = placer.live_graph()[0]
        assert g2 is g1

    def test_new_edge_is_a_topology_change(self, placer):
        placer.arrive(0, 0.5)
        placer.arrive(1, 0.5)
        g1 = placer.live_graph()[0]
        placer.update_edge(0, 1, 2.0)
        g2 = placer.live_graph()[0]
        assert g2.m == g1.m + 1
        assert g2.indptr is not g1.indptr

    def test_arrival_invalidates_snapshot(self, placer):
        _populate(placer, 4)
        g1 = placer.live_graph()[0]
        placer.arrive(99, 0.5, ((0, 1.0),))
        g2 = placer.live_graph()[0]
        assert g2 is not g1 and g2.n == 5


class TestUpdateEdgeValidation:
    def test_rejects_dead_endpoints(self, placer):
        placer.arrive(0, 0.5)
        with pytest.raises(InvalidInputError):
            placer.update_edge(0, 1, 1.0)
        with pytest.raises(InvalidInputError):
            placer.update_edge(1, 0, 1.0)

    def test_rejects_self_loop_and_bad_weight(self, placer):
        placer.arrive(0, 0.5)
        placer.arrive(1, 0.5)
        with pytest.raises(InvalidInputError):
            placer.update_edge(0, 0, 1.0)
        with pytest.raises(InvalidInputError):
            placer.update_edge(0, 1, 0.0)
        with pytest.raises(InvalidInputError):
            placer.update_edge(0, 1, float("nan"))

    def test_counts_edge_updates(self, placer):
        placer.arrive(0, 0.5)
        placer.arrive(1, 0.5)
        placer.update_edge(0, 1, 1.0)
        placer.update_edge(0, 1, 2.0)
        assert placer.counters.edge_updates == 2


class TestDirtyGate:
    def test_first_reopt_is_a_fallback(self, placer):
        """All tasks arrive dirty: the gate must pick the full path."""
        _populate(placer)
        placer.reoptimize()
        assert placer.counters.incremental_fallbacks == 1
        assert placer.counters.incremental_reopts == 0

    def test_small_churn_goes_warm_and_clears_dirty(self, placer):
        _populate(placer)
        placer.reoptimize()
        placer.update_edge(0, 1, 5.0)  # dirty = {0, 1} of 8 -> 0.25
        placer.reoptimize()
        assert placer.counters.incremental_reopts == 1
        assert placer.last_report.meta["dirty_frac"] == pytest.approx(0.25)
        assert placer.last_report.meta["incremental"] is True

    def test_large_churn_falls_back(self, hier_2x4):
        cfg = SolverConfig(
            n_trees=2,
            refine=False,
            seed=0,
            incremental=IncrementalConfig(max_dirty_frac=0.1),
        )
        placer = OnlinePlacer(hier_2x4, config=cfg)
        _populate(placer)
        placer.reoptimize()
        placer.update_edge(0, 1, 5.0)  # 2/8 = 0.25 > 0.1
        placer.reoptimize()
        assert placer.counters.incremental_fallbacks == 2
        assert placer.last_report.meta["incremental"] is False

    def test_warm_and_cold_reopt_place_identically(self, hier_2x4):
        """Bit-identity end to end: same churn, memo on vs. off."""
        reports = {}
        for enabled in (False, True):
            reset_cache()
            cfg = SolverConfig(
                n_trees=2,
                refine=False,
                seed=0,
                incremental=IncrementalConfig(enabled=enabled),
            )
            placer = OnlinePlacer(hier_2x4, config=cfg)
            _populate(placer)
            placer.reoptimize()
            for a, b, w in ((0, 1, 5.0), (2, 3, 0.5), (0, 1, 2.0)):
                placer.update_edge(a, b, w)
                placer.reoptimize()
            reports[enabled] = (
                placer.cost(),
                {t: placer.leaf_of(t) for t in range(8)},
            )
        assert reports[True] == reports[False]


class TestEnvOverride:
    def test_env_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_INCREMENTAL", "0")
        assert not incremental_enabled(SolverConfig())

    def test_env_one_enables_over_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_INCREMENTAL", "1")
        cfg = SolverConfig(incremental=IncrementalConfig(enabled=False))
        assert incremental_enabled(cfg)

    def test_config_disable_wins_without_env(self):
        cfg = SolverConfig(incremental=IncrementalConfig(enabled=False))
        assert not incremental_enabled(cfg)

    def test_cache_disable_disables_memo(self):
        from repro.cache import CacheConfig

        cfg = SolverConfig(cache=CacheConfig(enabled=False))
        assert not incremental_enabled(cfg)

    def test_invalid_max_dirty_frac_rejected(self):
        with pytest.raises(InvalidInputError):
            IncrementalConfig(max_dirty_frac=1.5)
