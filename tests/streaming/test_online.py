"""Tests for online placement under churn."""

import numpy as np
import pytest

from repro import SolverConfig
from repro.errors import InvalidInputError
from repro.streaming.online import (
    ChurnEvent,
    ChurnResult,
    OnlineCounters,
    OnlinePlacer,
    simulate_churn,
)


@pytest.fixture
def placer(hier_2x4):
    return OnlinePlacer(hier_2x4, config=SolverConfig(n_trees=2, refine=False, seed=0))


def clustered_trace(n_clusters=4, per_cluster=5, w_in=5.0, w_out=0.2):
    """Arrivals only: n_clusters groups with strong intra-cluster edges."""
    events = []
    live: list[int] = []
    tid = 0
    for round_ in range(per_cluster):
        for c in range(n_clusters):
            edges = tuple((u, w_in) for u in live if u % n_clusters == c)
            edges += tuple((u, w_out) for u in live[:2] if u % n_clusters != c)
            events.append(ChurnEvent("arrive", tid, 0.15, edges))
            live.append(tid)
            tid += 1
    return events


class TestOnlinePlacer:
    def test_arrival_respects_capacity(self, placer):
        for t in range(10):
            placer.arrive(t, demand=0.5)
        loads = placer._loads
        assert loads.max() <= placer.hierarchy.leaf_capacity + 1e-9

    def test_arrival_prefers_neighbours(self, placer):
        placer.arrive(0, 0.2)
        leaf0 = placer.leaf_of(0)
        placer.arrive(1, 0.2, edges=((0, 10.0),))
        # Strong edge: co-located or at least same socket.
        assert placer.hierarchy.lca_level(leaf0, placer.leaf_of(1)) >= 1

    def test_duplicate_arrival_rejected(self, placer):
        placer.arrive(0, 0.2)
        with pytest.raises(InvalidInputError):
            placer.arrive(0, 0.2)

    def test_bad_demand_rejected(self, placer):
        with pytest.raises(InvalidInputError):
            placer.arrive(0, 0.0)
        with pytest.raises(InvalidInputError):
            placer.arrive(1, 5.0)

    def test_depart_frees_load(self, placer):
        placer.arrive(0, 0.4)
        leaf = placer.leaf_of(0)
        placer.depart(0)
        assert placer.n_tasks == 0
        assert placer._loads[leaf] == pytest.approx(0.0)

    def test_depart_unknown_rejected(self, placer):
        with pytest.raises(InvalidInputError):
            placer.depart(99)

    def test_edges_to_departed_tasks_ignored(self, placer):
        placer.arrive(0, 0.2)
        placer.depart(0)
        placer.arrive(1, 0.2, edges=((0, 3.0),))  # 0 is gone: no crash
        assert placer.cost() == 0.0

    def test_cost_tracks_live_graph(self, placer):
        placer.arrive(0, 0.2)
        placer.arrive(1, 0.2, edges=((0, 2.0),))
        g, d, leaf, tasks = placer.live_graph()
        assert g.n == 2
        from repro import Placement

        assert placer.cost() == pytest.approx(
            Placement(g, placer.hierarchy, d, leaf).cost()
        )

    def test_reoptimize_never_worsens(self, placer):
        for ev in clustered_trace():
            placer.arrive(ev.task, ev.demand, ev.edges)
        before = placer.cost()
        placer.reoptimize(migration_budget=None)
        assert placer.cost() <= before + 1e-9

    def test_reoptimize_budget_respected(self, placer):
        for ev in clustered_trace():
            placer.arrive(ev.task, ev.demand, ev.edges)
        moved = placer.reoptimize(migration_budget=2)
        assert moved <= 2
        assert placer.migrations == moved

    def test_reoptimize_trivial_state(self, placer):
        assert placer.reoptimize() == 0
        placer.arrive(0, 0.2)
        assert placer.reoptimize() == 0
        # Trivial early-outs are not counted as re-optimisation calls.
        assert placer.counters.reopt_calls == 0
        assert placer.reopt_migrations == []


class TestCounters:
    def test_arrivals_and_departures_counted(self, placer):
        placer.arrive(0, 0.2)
        placer.arrive(1, 0.2)
        placer.depart(0)
        assert placer.counters.arrivals == 2
        assert placer.counters.departures == 1
        assert placer.counters.rejections == 0

    def test_overload_arrival_counted_as_rejection(self, placer):
        # Fill every leaf beyond budget: the next arrival cannot fit.
        k = placer.hierarchy.k
        for t in range(2 * k):
            placer.arrive(t, 0.51)
        assert placer.counters.rejections > 0
        assert placer.counters.arrivals == 2 * k  # still placed

    def test_reoptimize_updates_counters(self, placer):
        for ev in clustered_trace():
            placer.arrive(ev.task, ev.demand, ev.edges)
        moved = placer.reoptimize(migration_budget=None)
        assert placer.counters.reopt_calls == 1
        assert placer.counters.migrations == moved
        assert placer.reopt_migrations == [moved]
        assert placer.counters.reopt_seconds > 0.0

    def test_per_call_migrations_no_longer_dropped(self, placer):
        for ev in clustered_trace():
            placer.arrive(ev.task, ev.demand, ev.edges)
        first = placer.reoptimize(migration_budget=2)
        second = placer.reoptimize(migration_budget=None)
        assert placer.reopt_migrations == [first, second]
        assert placer.migrations == first + second

    def test_as_dict_round_trip(self):
        counters = OnlineCounters(arrivals=3, rejections=1)
        d = counters.as_dict()
        assert d["arrivals"] == 3
        assert d["rejections"] == 1
        assert set(d) == {
            "arrivals",
            "departures",
            "rejections",
            "migrations",
            "reopt_calls",
            "reopt_seconds",
            "reopt_failures",
            "tree_cache_hits",
            "tree_cache_misses",
            "edge_updates",
            "incremental_reopts",
            "incremental_fallbacks",
        }


class TestSimulateChurn:
    def test_policies_ordered(self, hier_2x4):
        events = clustered_trace(per_cluster=6)
        cfg = SolverConfig(n_trees=2, refine=False, seed=0)
        never, m0 = simulate_churn(hier_2x4, events, reopt_period=0, config=cfg)
        always, m2 = simulate_churn(
            hier_2x4, events, reopt_period=8, migration_budget=None, config=cfg
        )
        assert m0 == 0
        assert m2 > 0
        assert np.mean(always) <= np.mean(never) + 1e-9

    def test_cost_series_length(self, hier_2x4):
        events = clustered_trace(per_cluster=2)
        costs, _ = simulate_churn(hier_2x4, events, config=SolverConfig(n_trees=2))
        assert len(costs) == len(events)

    def test_bad_event_kind(self, hier_2x4):
        with pytest.raises(InvalidInputError):
            simulate_churn(hier_2x4, [ChurnEvent("explode", 0)])

    def test_result_exposes_counters(self, hier_2x4):
        events = clustered_trace(per_cluster=4)
        result = simulate_churn(
            hier_2x4,
            events,
            reopt_period=8,
            migration_budget=3,
            config=SolverConfig(n_trees=2, refine=False, seed=0),
        )
        assert isinstance(result, ChurnResult)
        assert result.counters.arrivals == len(events)
        assert result.counters.departures == 0
        assert result.counters.reopt_calls == len(result.reopt_migrations)
        assert result.migrations == sum(result.reopt_migrations)
        assert result.migrations == result.counters.migrations

    def test_legacy_tuple_unpacking(self, hier_2x4):
        """Pre-observability callers unpack (costs, migrations)."""
        events = clustered_trace(per_cluster=2)
        costs, migrations = simulate_churn(
            hier_2x4, events, config=SolverConfig(n_trees=2)
        )
        assert len(costs) == len(events)
        assert migrations == 0


class TestSnapshotCache:
    def test_live_graph_cached_between_topology_changes(self, placer):
        for t in range(6):
            placer.arrive(t, demand=0.3, edges=tuple((u, 1.0) for u in range(t)))
        g1, d1, leaf1, tasks1 = placer.live_graph()
        g2, d2, _leaf2, tasks2 = placer.live_graph()
        # Same topology version: the graph/demand build is reused as-is.
        assert g1 is g2 and d1 is d2 and tasks1 is tasks2
        placer.depart(3)
        g3, _d3, _leaf3, tasks3 = placer.live_graph()
        assert g3 is not g1
        assert 3 not in tasks3
        assert g3.n == 5

    def test_leaf_snapshot_fresh_after_migration(self, placer):
        for t in range(8):
            edges = tuple((u, 5.0) for u in range(t) if u % 2 == t % 2)
            placer.arrive(t, demand=0.3, edges=edges)
        _g, _d, before, _tasks = placer.live_graph()
        placer.reoptimize()
        g, _d, after, _tasks = placer.live_graph()
        # Reoptimize moved tasks: the cached graph survives, the leaf
        # vector reflects the migrations.
        assert len(after) == g.n
        assert placer.cost() == pytest.approx(
            __import__("repro").hierarchy.placement.Placement(
                g, placer.hierarchy, _d, after
            ).cost()
        )
