"""Tests for the streaming operator DAG model."""

import pytest

from repro.errors import InvalidInputError
from repro.streaming.operators import Operator, StreamDAG


def linear_pipeline(rates=(1000.0,), sel=0.5):
    dag = StreamDAG()
    src = dag.add_operator(Operator("src", source_rate=rates[0], tuple_bytes=100.0))
    a = dag.add_operator(Operator("a", selectivity=sel, tuple_bytes=50.0))
    b = dag.add_operator(Operator("b", selectivity=1.0, tuple_bytes=10.0))
    dag.add_edge(src, a)
    dag.add_edge(a, b)
    return dag


class TestOperator:
    def test_validation(self):
        with pytest.raises(InvalidInputError):
            Operator("x", service_cost=-1.0)
        with pytest.raises(InvalidInputError):
            Operator("x", selectivity=-0.1)
        with pytest.raises(InvalidInputError):
            Operator("x", tuple_bytes=0.0)
        with pytest.raises(InvalidInputError):
            Operator("x", source_rate=-1.0)


class TestStreamDAG:
    def test_topological_order(self):
        dag = linear_pipeline()
        order = dag.topological_order()
        assert order.index(0) < order.index(1) < order.index(2)

    def test_cycle_detected(self):
        dag = StreamDAG()
        a = dag.add_operator(Operator("a"))
        b = dag.add_operator(Operator("b"))
        dag.add_edge(a, b)
        dag.add_edge(b, a)
        with pytest.raises(InvalidInputError):
            dag.topological_order()

    def test_bad_edge(self):
        dag = StreamDAG()
        a = dag.add_operator(Operator("a"))
        with pytest.raises(InvalidInputError):
            dag.add_edge(a, a)
        with pytest.raises(InvalidInputError):
            dag.add_edge(a, 5)
        b = dag.add_operator(Operator("b"))
        with pytest.raises(InvalidInputError):
            dag.add_edge(a, b, share=0.0)

    def test_rate_propagation_chain(self):
        dag = linear_pipeline(rates=(1000.0,), sel=0.5)
        in_rate, traffic = dag.propagate_rates()
        assert in_rate[0] == 1000.0
        assert in_rate[1] == 1000.0  # src selectivity 1
        assert in_rate[2] == 500.0  # a halves
        # Edge src->a carries 1000 tuples * 100 B.
        assert traffic[0] == pytest.approx(100_000.0)
        # Edge a->b carries 500 tuples * 50 B.
        assert traffic[1] == pytest.approx(25_000.0)

    def test_fan_out_shares(self):
        dag = StreamDAG()
        src = dag.add_operator(Operator("src", source_rate=100.0))
        a = dag.add_operator(Operator("a"))
        b = dag.add_operator(Operator("b"))
        dag.add_edge(src, a, share=0.25)
        dag.add_edge(src, b, share=0.75)
        in_rate, _ = dag.propagate_rates()
        assert in_rate[1] == pytest.approx(25.0)
        assert in_rate[2] == pytest.approx(75.0)

    def test_fan_in_sums(self):
        dag = StreamDAG()
        s1 = dag.add_operator(Operator("s1", source_rate=10.0))
        s2 = dag.add_operator(Operator("s2", source_rate=20.0))
        j = dag.add_operator(Operator("join"))
        dag.add_edge(s1, j)
        dag.add_edge(s2, j)
        in_rate, _ = dag.propagate_rates()
        assert in_rate[2] == pytest.approx(30.0)

    def test_cpu_demands_scale(self):
        dag = linear_pipeline()
        cpu = dag.cpu_demands(relative_to=0.8)
        assert cpu.max() == pytest.approx(0.8)

    def test_communication_graph_merges_and_filters(self):
        dag = StreamDAG()
        a = dag.add_operator(Operator("a", source_rate=10.0))
        b = dag.add_operator(Operator("b", selectivity=0.0))
        dag.add_edge(a, b, share=0.5)
        dag.add_edge(a, b, share=0.5)
        n, triples = dag.communication_graph()
        assert n == 2
        # Two parallel edges with traffic merge in the Graph constructor.
        from repro import Graph

        g = Graph(n, triples)
        assert g.m == 1
