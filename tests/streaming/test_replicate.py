"""Tests for operator replication."""

import numpy as np
import pytest

from repro.errors import InvalidInputError
from repro.streaming.operators import Operator, StreamDAG
from repro.streaming.replicate import auto_replicate, replicate_operator
from repro.streaming.simulator import evaluate_placement
from repro.streaming.workload import random_workload


def hot_pipeline():
    """src -> hot -> sink where `hot` needs 2.4 cores at nominal rate."""
    dag = StreamDAG()
    src = dag.add_operator(
        Operator("src", source_rate=12_000.0, service_cost=1e-5, tuple_bytes=50)
    )
    hot = dag.add_operator(Operator("hot", service_cost=2e-4, tuple_bytes=40))
    sink = dag.add_operator(Operator("sink", service_cost=1e-5, selectivity=0.0))
    dag.add_edge(src, hot)
    dag.add_edge(hot, sink)
    return dag


class TestReplicateOperator:
    def test_rate_conservation(self):
        dag = hot_pipeline()
        rep = replicate_operator(dag, 1, 3)
        in0, traffic0 = dag.propagate_rates()
        in1, traffic1 = rep.propagate_rates()
        # Totals are preserved.
        assert traffic1.sum() == pytest.approx(traffic0.sum())
        # The sink's rate is unchanged.
        sink_new = next(
            v for v, o in enumerate(rep.operators) if o.name == "sink"
        )
        assert in1[sink_new] == pytest.approx(in0[2])

    def test_replica_share_split(self):
        dag = hot_pipeline()
        rep = replicate_operator(dag, 1, 3)
        in1, _ = rep.propagate_rates()
        replicas = [v for v, o in enumerate(rep.operators) if o.name.startswith("hot#")]
        assert len(replicas) == 3
        for r in replicas:
            assert in1[r] == pytest.approx(12_000.0 / 3)

    def test_source_replication_splits_rate(self):
        dag = hot_pipeline()
        rep = replicate_operator(dag, 0, 2)
        in1, _ = rep.propagate_rates()
        srcs = [v for v, o in enumerate(rep.operators) if o.name.startswith("src#")]
        assert len(srcs) == 2
        total = sum(in1[s] for s in srcs)
        assert total == pytest.approx(12_000.0)

    def test_factor_one_equivalent(self):
        dag = hot_pipeline()
        rep = replicate_operator(dag, 1, 1)
        in0, t0 = dag.propagate_rates()
        in1, t1 = rep.propagate_rates()
        assert np.allclose(sorted(in0), sorted(in1))
        assert t1.sum() == pytest.approx(t0.sum())

    def test_validation(self):
        dag = hot_pipeline()
        with pytest.raises(InvalidInputError):
            replicate_operator(dag, 99, 2)
        with pytest.raises(InvalidInputError):
            replicate_operator(dag, 1, 0)


class TestAutoReplicate:
    def test_hot_operator_split(self):
        dag = hot_pipeline()
        rep, applied = auto_replicate(dag, max_utilisation=0.8)
        assert applied == {"hot": 3}  # 2.4 cores / 0.8 = 3
        in1, _ = rep.propagate_rates()
        for v, oper in enumerate(rep.operators):
            assert float(in1[v]) * oper.service_cost <= 0.8 + 1e-9

    def test_cool_dag_untouched(self):
        dag = random_workload(n_queries=2, seed=1)
        rep, applied = auto_replicate(dag, max_utilisation=1e9)
        assert applied == {}
        assert rep is dag

    def test_max_factor_cap(self):
        dag = hot_pipeline()
        rep, applied = auto_replicate(dag, max_utilisation=0.1, max_factor=4)
        assert applied["hot"] == 4

    def test_bad_budget(self):
        with pytest.raises(InvalidInputError):
            auto_replicate(hot_pipeline(), max_utilisation=0.0)

    def test_replication_makes_placement_feasible(self, hier_2x4):
        """The hot operator cannot fit one core; after replication the
        workload sustains nominal rates."""
        dag = hot_pipeline()
        rep, _ = auto_replicate(dag, max_utilisation=0.8)
        # Spread replicas round-robin; with a tax-free model the compute
        # utilisation alone must fit each core's budget.
        from repro.streaming.simulator import CommCostModel

        leaf_of = np.arange(rep.n_operators) % hier_2x4.k
        free = CommCostModel((0.0,) * (hier_2x4.h + 1))
        report = evaluate_placement(rep, hier_2x4, leaf_of, model=free)
        assert report.core_utilisation.max() <= 0.8 + 1e-9


class TestPlaceDagReplication:
    def test_replicate_hot_flag(self, hier_2x4):
        from repro.streaming.pinning import place_dag

        dag = hot_pipeline()
        placement, report = place_dag(
            dag,
            hier_2x4,
            method="greedy",
            replicate_hot=True,
            max_utilisation=0.8,
            seed=0,
        )
        # The transformed workload has 5 operators (3 hot replicas).
        assert placement.leaf_of.size == 5
        # Without replication the hot operator alone saturates a core at
        # nominal rates; with it the workload has headroom at nominal.
        base_p, base_r = place_dag(dag, hier_2x4, method="greedy", seed=0)
        assert report.max_scale > base_r.max_scale
