"""Tests for the throughput model and the placement-quality link."""

import numpy as np
import pytest

from repro.errors import InvalidInputError
from repro.streaming.operators import Operator, StreamDAG
from repro.streaming.simulator import CommCostModel, evaluate_placement
from repro.streaming.workload import random_workload
from repro.streaming.pinning import dag_to_instance, place_dag


def two_op_dag(rate=1000.0, size=100.0):
    dag = StreamDAG()
    a = dag.add_operator(Operator("a", source_rate=rate, service_cost=1e-4,
                                  tuple_bytes=size))
    b = dag.add_operator(Operator("b", service_cost=1e-4))
    dag.add_edge(a, b)
    return dag


class TestCommCostModel:
    def test_geometric_profile(self, hier_2x4):
        m = CommCostModel.for_hierarchy(hier_2x4, base=1e-6, ratio=4.0)
        assert m.tax[2] == 0.0
        assert m.tax[1] == pytest.approx(1e-6)
        assert m.tax[0] == pytest.approx(4e-6)

    def test_validation(self):
        with pytest.raises(InvalidInputError):
            CommCostModel((1e-6, 2e-6, 0.0))  # increasing by level
        with pytest.raises(InvalidInputError):
            CommCostModel((-1.0, 0.0))


class TestEvaluatePlacement:
    def test_colocated_no_tax(self, hier_2x4):
        dag = two_op_dag()
        rep = evaluate_placement(dag, hier_2x4, [0, 0])
        assert rep.comm_fraction == 0.0
        assert rep.traffic_by_level[2] > 0

    def test_cross_socket_costs_more(self, hier_2x4):
        dag = two_op_dag()
        same = evaluate_placement(dag, hier_2x4, [0, 1])
        cross = evaluate_placement(dag, hier_2x4, [0, 4])
        assert cross.comm_fraction > same.comm_fraction
        assert cross.max_scale < same.max_scale

    def test_max_scale_definition(self, hier_2x4):
        dag = two_op_dag(rate=1000.0)
        rep = evaluate_placement(dag, hier_2x4, [0, 0])
        # Each op burns 1000 * 1e-4 = 0.1 of its core; both on core 0 -> 0.2.
        assert rep.core_utilisation[0] == pytest.approx(0.2)
        assert rep.max_scale == pytest.approx(5.0)

    def test_traffic_by_level_partition(self, hier_2x4):
        dag = random_workload(n_queries=3, seed=1)
        rng = np.random.default_rng(0)
        leaf_of = rng.integers(0, 8, size=dag.n_operators)
        rep = evaluate_placement(dag, hier_2x4, leaf_of)
        _, traffic = dag.propagate_rates()
        assert rep.traffic_by_level.sum() == pytest.approx(traffic.sum())

    def test_bad_inputs(self, hier_2x4):
        dag = two_op_dag()
        with pytest.raises(InvalidInputError):
            evaluate_placement(dag, hier_2x4, [0])
        with pytest.raises(InvalidInputError):
            evaluate_placement(dag, hier_2x4, [0, 99])


class TestPinning:
    def test_instance_conversion(self, hier_2x4):
        dag = random_workload(n_queries=2, seed=3)
        g, demands = dag_to_instance(dag, hier_2x4, target_fill=0.5)
        assert g.n == dag.n_operators
        assert demands.sum() <= 0.5 * hier_2x4.total_capacity + 1e-6
        assert demands.min() > 0

    def test_place_dag_methods(self, hier_2x4):
        dag = random_workload(n_queries=2, seed=4)
        p_rr, rep_rr = place_dag(dag, hier_2x4, method="round_robin")
        p_greedy, rep_greedy = place_dag(dag, hier_2x4, method="greedy")
        assert p_rr.leaf_of.shape == (dag.n_operators,)
        assert rep_rr.max_scale > 0

    def test_unknown_method(self, hier_2x4):
        dag = random_workload(n_queries=1, seed=5)
        with pytest.raises(InvalidInputError):
            place_dag(dag, hier_2x4, method="wat")

    def test_better_cost_means_less_tax(self, hier_2x4):
        """Lower Eq.(1) cost (with traffic weights) => lower comm burn."""
        dag = random_workload(n_queries=4, seed=6)
        p_rand, rep_rand = place_dag(dag, hier_2x4, method="random", seed=0)
        p_hgp, rep_hgp = place_dag(dag, hier_2x4, method="hgp")
        assert p_hgp.cost() <= p_rand.cost()
        assert rep_hgp.comm_fraction <= rep_rand.comm_fraction + 1e-9


class TestWorkloadGenerator:
    def test_acyclic_and_connected_enough(self):
        for seed in range(4):
            dag = random_workload(n_queries=3, n_sources=2, seed=seed)
            dag.topological_order()  # raises on cycles
            assert dag.n_operators >= 8

    def test_deterministic(self):
        a = random_workload(n_queries=3, seed=9)
        b = random_workload(n_queries=3, seed=9)
        assert a.n_operators == b.n_operators
        assert a.edges == b.edges

    def test_bad_params(self):
        with pytest.raises(InvalidInputError):
            random_workload(n_queries=0)
