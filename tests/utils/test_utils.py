"""Tests for RNG plumbing, validation helpers and timing."""

import time

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Stopwatch, timed
from repro.utils.validation import (
    check_all_finite,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
)


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_deterministic(self):
        a = ensure_rng(5).integers(0, 1 << 30, size=4)
        b = ensure_rng(5).integers(0, 1 << 30, size=4)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g

    def test_spawn_independent_and_deterministic(self):
        kids_a = spawn_rngs(3, 4)
        kids_b = spawn_rngs(3, 4)
        draws_a = [k.integers(0, 1 << 30) for k in kids_a]
        draws_b = [k.integers(0, 1 << 30) for k in kids_b]
        assert draws_a == draws_b
        assert len(set(draws_a)) == 4  # overwhelmingly distinct

    def test_spawn_from_generator(self):
        g = np.random.default_rng(1)
        kids = spawn_rngs(g, 3)
        assert len(kids) == 3

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestValidation:
    def test_positive(self):
        assert check_positive("x", 1.5) == 1.5
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                check_positive("x", bad)

    def test_nonnegative(self):
        assert check_nonnegative("x", 0.0) == 0.0
        with pytest.raises(ValueError):
            check_nonnegative("x", -0.1)

    def test_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_in_range(self):
        assert check_in_range("x", 2.0, 1.0, 3.0) == 2.0
        with pytest.raises(ValueError):
            check_in_range("x", 0.0, 1.0, 3.0)

    def test_all_finite(self):
        check_all_finite("v", [1.0, 2.0])
        with pytest.raises(ValueError):
            check_all_finite("v", [1.0, float("nan")])


class TestTiming:
    def test_stopwatch_accumulates(self):
        sw = Stopwatch()
        with sw.section("a"):
            pass
        with sw.section("a"):
            pass
        assert sw.counts["a"] == 2
        assert sw.total("a") >= 0.0
        assert sw.total("missing") == 0.0

    def test_merge_accumulates_sections(self):
        a = Stopwatch(totals={"dp": 1.0, "repair": 0.5}, counts={"dp": 2, "repair": 1})
        b = Stopwatch(totals={"dp": 0.25, "trees": 2.0}, counts={"dp": 1, "trees": 3})
        out = a.merge(b)
        assert out is a
        assert a.total("dp") == pytest.approx(1.25)
        assert a.counts["dp"] == 3
        assert a.total("repair") == pytest.approx(0.5)
        assert a.total("trees") == pytest.approx(2.0)
        assert a.counts["trees"] == 3
        # merge must not mutate the source
        assert b.total("dp") == pytest.approx(0.25)

    def test_merge_empty_is_noop(self):
        a = Stopwatch(totals={"dp": 1.0}, counts={"dp": 1})
        a.merge(Stopwatch())
        assert a.total("dp") == pytest.approx(1.0)
        assert a.counts["dp"] == 1

    def test_summary_mentions_sections(self):
        sw = Stopwatch()
        with sw.section("phase_x"):
            time.sleep(0.001)
        assert "phase_x" in sw.summary()

    def test_timed(self):
        with timed() as t:
            time.sleep(0.001)
        assert t[0] >= 0.001
