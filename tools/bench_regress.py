#!/usr/bin/env python
"""Gate benchmark runs against checked-in baselines.

Compares a freshly produced ``BENCH_*.json`` (written by the benchmark
suite under ``benchmarks/results/``) against a baseline copy of the same
file, point by point:

* **Cost is gated hard** — any change in a point's DP cost
  (``members[0].dp_cost`` of the embedded run report) beyond
  ``--cost-tol`` percent fails the run.  The solver is deterministic per
  seed, so cost drift means behaviour changed.
* **Time is warn-only by default** — per-point ``time_s`` regressions
  beyond ``--time-warn`` percent print a warning with the per-stage
  breakdown (via :func:`repro.obs.report.diff_reports` on the embedded
  reports); pass ``--time-fail`` to turn those warnings into failures.
* **Coverage is gated hard** — a point missing from the fresh file or
  appearing only there fails the run (the sweep definition changed
  without refreshing the baseline).
* **Meta floors are gated hard** — repeatable ``--min-meta KEY=FLOAT``
  flags assert that the fresh file's top-level ``meta`` dict carries
  ``KEY`` with a value of at least ``FLOAT`` (e.g. E17's cache
  effectiveness: ``--min-meta hit_rate=0.5 --min-meta warm_speedup=2``).
* **Metrics dumps are gated hard** — ``--metrics-dump PATH`` points at
  the registry dump the benchmark session wrote (see
  ``benchmarks/conftest.py`` and the ``REPRO_METRICS_DUMP`` variable);
  the file must exist, parse, and carry at least one ``repro_*``
  family.  A summary of the hot counters is printed so the CI log
  doubles as a coarse metrics artifact.

Usage (CI runs this against the small E4 instance)::

    PYTHONPATH=src python tools/bench_regress.py \
        --baseline /tmp/baseline/BENCH_E4_runtime_scaling.json \
        --fresh benchmarks/results/BENCH_E4_runtime_scaling.json

Exit code 0 when clean (or warnings only), 1 on any hard failure.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Tuple

from repro.core.telemetry import RunReport
from repro.obs.report import diff_reports

#: Point identity within a sweep file: (sweep, n, h, grid_cells).
KEY_FIELDS = ("sweep", "n", "h", "grid_cells")


def point_key(point: dict) -> Tuple:
    return tuple(point.get(f) for f in KEY_FIELDS)


def load_points(path: Path) -> Dict[Tuple, dict]:
    data = json.loads(path.read_text())
    points = {}
    for point in data.get("points", []):
        key = point_key(point)
        if key in points:
            raise SystemExit(f"duplicate point {key} in {path}")
        points[key] = point
    if not points:
        raise SystemExit(f"no points in {path}")
    return points


def parse_min_meta(spec: str) -> Tuple[str, float]:
    key, sep, floor = spec.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"expected KEY=FLOAT, got {spec!r}"
        )
    try:
        return key, float(floor)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected KEY=FLOAT, got {spec!r}"
        ) from exc


def check_meta_floors(path: Path, floors: list) -> list:
    """Gate the fresh file's top-level ``meta`` dict against floors."""
    failures = []
    meta = json.loads(path.read_text()).get("meta") or {}
    for key, floor in floors:
        value = meta.get(key)
        if value is None:
            failures.append(f"meta key {key!r} missing from {path}")
        elif float(value) < floor:
            failures.append(
                f"meta {key} = {float(value):g} below required floor {floor:g}"
            )
    return failures


def check_metrics_dump(path: Path) -> Tuple[list, list]:
    """Validate a session metrics dump; return (failures, summary lines).

    The dump is what ``benchmarks/conftest.py`` writes when
    ``REPRO_METRICS_DUMP`` is set: ``{"snapshot": <registry snapshot>,
    "rendered": <Prometheus text>}``.
    """
    if not path.exists():
        return [f"metrics dump not found: {path}"], []
    try:
        dump = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return [f"metrics dump {path} is not valid JSON: {exc}"], []
    families = (dump.get("snapshot") or {}).get("families") or []
    repro = [f for f in families if str(f.get("name", "")).startswith("repro_")]
    if not repro:
        return [f"metrics dump {path} carries no repro_* families"], []
    summary = [f"metrics dump: {len(repro)} repro_* families in {path}"]
    for fam in repro:
        if fam.get("kind") != "counter":
            continue
        total = sum(float(v) for _key, v in fam.get("series", ()))
        if total:
            summary.append(f"  {fam['name']} {total:g}")
    return [], summary


def point_cost(point: dict) -> float:
    report = point.get("report") or {}
    members = report.get("members") or []
    if members:
        return float(members[0]["dp_cost"])
    cost = report.get("cost")
    if cost is None:
        raise SystemExit(f"point {point_key(point)} carries no cost")
    return float(cost)


def pct_delta(baseline: float, fresh: float) -> float:
    if baseline == 0.0:
        return 0.0 if fresh == 0.0 else float("inf")
    return (fresh - baseline) / abs(baseline) * 100.0


def stage_breakdown(base_point: dict, fresh_point: dict) -> str:
    """Per-stage time table for one regressed point (best-effort)."""
    try:
        diff = diff_reports(
            RunReport.from_dict(base_point["report"]),
            RunReport.from_dict(fresh_point["report"]),
        )
    except (KeyError, TypeError, ValueError):
        return "    (no embedded run reports to break down)"
    return "\n".join("    " + line for line in diff.render().splitlines())


def compare(
    baseline: Dict[Tuple, dict],
    fresh: Dict[Tuple, dict],
    time_warn_pct: float,
    cost_tol_pct: float,
    time_is_fatal: bool,
) -> Tuple[list, list]:
    """Return (failures, warnings) as printable strings."""
    failures, warnings = [], []
    for key in baseline.keys() - fresh.keys():
        failures.append(f"point {key} missing from fresh results")
    for key in fresh.keys() - baseline.keys():
        failures.append(f"point {key} not in baseline (refresh the baseline?)")
    for key in sorted(baseline.keys() & fresh.keys()):
        bp, fp = baseline[key], fresh[key]
        cost_pct = pct_delta(point_cost(bp), point_cost(fp))
        if abs(cost_pct) > cost_tol_pct:
            failures.append(
                f"point {key}: dp_cost changed {point_cost(bp):g} -> "
                f"{point_cost(fp):g} ({cost_pct:+.2f}%)"
            )
        time_pct = pct_delta(float(bp["time_s"]), float(fp["time_s"]))
        if time_pct > time_warn_pct:
            msg = (
                f"point {key}: time_s {float(bp['time_s']):.4g} -> "
                f"{float(fp['time_s']):.4g} ({time_pct:+.1f}% > "
                f"{time_warn_pct:g}%)\n" + stage_breakdown(bp, fp)
            )
            (failures if time_is_fatal else warnings).append(msg)
    return failures, warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="compare a fresh BENCH_*.json against its baseline"
    )
    parser.add_argument("--baseline", required=True, help="baseline BENCH_*.json")
    parser.add_argument("--fresh", required=True, help="fresh BENCH_*.json")
    parser.add_argument(
        "--time-warn",
        type=float,
        default=50.0,
        metavar="PCT",
        help="warn when a point's time_s regresses by more than PCT "
        "(default 50; CI timing is noisy)",
    )
    parser.add_argument(
        "--cost-tol",
        type=float,
        default=0.0,
        metavar="PCT",
        help="tolerated absolute dp_cost drift in percent (default 0: exact)",
    )
    parser.add_argument(
        "--time-fail",
        action="store_true",
        help="treat time regressions as failures instead of warnings",
    )
    parser.add_argument(
        "--min-meta",
        type=parse_min_meta,
        action="append",
        default=[],
        metavar="KEY=FLOAT",
        help="fail unless the fresh file's meta[KEY] >= FLOAT (repeatable)",
    )
    parser.add_argument(
        "--metrics-dump",
        default=None,
        metavar="PATH",
        help="validate and summarise the benchmark session's registry "
        "dump (written when REPRO_METRICS_DUMP is set)",
    )
    args = parser.parse_args(argv)

    for path in (args.baseline, args.fresh):
        if not Path(path).exists():
            print(f"bench_regress: file not found: {path}", file=sys.stderr)
            return 1
    baseline = load_points(Path(args.baseline))
    fresh = load_points(Path(args.fresh))
    failures, warnings = compare(
        baseline, fresh, args.time_warn, args.cost_tol, args.time_fail
    )
    failures.extend(check_meta_floors(Path(args.fresh), args.min_meta))
    if args.metrics_dump:
        dump_failures, dump_summary = check_metrics_dump(Path(args.metrics_dump))
        failures.extend(dump_failures)
        for line in dump_summary:
            print(line)

    for msg in warnings:
        print(f"WARN: {msg}")
    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    print(
        f"bench_regress: {len(baseline)} baseline points, "
        f"{len(failures)} failure(s), {len(warnings)} warning(s)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
