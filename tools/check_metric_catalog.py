#!/usr/bin/env python
"""Keep the metric catalog in docs/observability.md honest.

Scans the library source for metric registrations — string literals of
the form ``repro_*`` passed to ``.counter(`` / ``.gauge(`` /
``.histogram(`` — and cross-checks them against the catalog table in
``docs/observability.md``:

* a **registered metric without a catalog row** fails the check (new
  instrumentation must be documented before it ships), and
* a **catalog row without a registration** fails too (stale rows make
  operators hunt for series that no longer exist).

CI runs this in the lint job::

    python tools/check_metric_catalog.py

Exit code 0 when the catalog and the source agree, 1 otherwise.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Dict, List, Set

REPO_ROOT = Path(__file__).resolve().parent.parent
SOURCE_ROOT = REPO_ROOT / "src"
CATALOG_DOC = REPO_ROOT / "docs" / "observability.md"

#: A metric registration: the family name literal directly following a
#: registry method call (possibly across a line break).
REGISTRATION_RE = re.compile(
    r"\.(?:counter|gauge|histogram)\(\s*[\"'](repro_[a-z0-9_]+)[\"']"
)

#: A catalog row: a markdown table line whose first cell is the metric
#: name in backticks, with optional ``{label,...}`` suffix.
CATALOG_ROW_RE = re.compile(r"^\|\s*`(repro_[a-z0-9_]+)(?:\{[^}]*\})?`\s*\|")


def registered_metrics(source_root: Path) -> Dict[str, List[str]]:
    """Map of metric name -> source files registering it."""
    found: Dict[str, List[str]] = {}
    for path in sorted(source_root.rglob("*.py")):
        text = path.read_text()
        try:
            shown = str(path.relative_to(REPO_ROOT))
        except ValueError:  # scanning a tree outside the repo (tests)
            shown = str(path)
        for name in REGISTRATION_RE.findall(text):
            found.setdefault(name, []).append(shown)
    return found


def catalogued_metrics(doc: Path) -> Set[str]:
    names = set()
    for line in doc.read_text().splitlines():
        match = CATALOG_ROW_RE.match(line.strip())
        if match:
            names.add(match.group(1))
    return names


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="cross-check metric registrations against the catalog"
    )
    parser.add_argument(
        "--source", default=str(SOURCE_ROOT), help="library source root"
    )
    parser.add_argument(
        "--catalog", default=str(CATALOG_DOC), help="markdown file with the catalog"
    )
    args = parser.parse_args(argv)

    source_root, catalog_doc = Path(args.source), Path(args.catalog)
    if not catalog_doc.exists():
        print(f"check_metric_catalog: no such file: {catalog_doc}", file=sys.stderr)
        return 1
    registered = registered_metrics(source_root)
    catalogued = catalogued_metrics(catalog_doc)

    failures = []
    for name in sorted(set(registered) - catalogued):
        files = ", ".join(sorted(set(registered[name])))
        failures.append(f"{name} registered in {files} but has no catalog row")
    for name in sorted(catalogued - set(registered)):
        failures.append(f"{name} has a catalog row but no registration in source")

    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    print(
        f"check_metric_catalog: {len(registered)} registered, "
        f"{len(catalogued)} catalogued, {len(failures)} failure(s)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
