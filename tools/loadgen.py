#!/usr/bin/env python
"""Open-loop load generator for the placement service (``repro serve``).

Drives mixed interactive/batch traffic at a *fixed arrival rate* —
open-loop, i.e. arrivals do not wait for completions, so an overloaded
server sees real queue pressure instead of the closed-loop coordinated
omission that hides it.  The trace is duplicate-heavy on purpose: a
configurable fraction of requests re-ask the hottest instance, which is
what the serving layer's coalescing + response cache are for.

Modes
-----
* Against a running server::

      python tools/loadgen.py --url http://127.0.0.1:8787 --duration 10

* ``--smoke``: spawn a ``repro serve`` subprocess, drive ~2x its
  measured capacity for ``--duration`` seconds, then assert the
  robustness contract and exit non-zero on any violation:

  1. the server process survived (zero deaths),
  2. ``/healthz`` answers 200 after the storm,
  3. overload was shed (503s observed, never a crash),
  4. a post-recovery response is bit-identical (cost + placement) to a
     cold in-process solve of the same instance.

  ``REPRO_FAULT_SPEC`` (e.g. ``worker_crash:attempt=1`` or
  ``serve_flood:every=3``) is forwarded to the *server* process only;
  the local reference solve always runs fault-free.

Used by the CI ``serve`` job (chaos matrix) and importable by the E19
benchmark for its traffic engine.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.client import PlacementClient, ServeUnavailableError  # noqa: E402

#: Hierarchy every loadgen instance places onto (8 leaves).
DEGREES = (2, 4)
CM = (10.0, 3.0, 0.0)


# ----------------------------------------------------------------------
# trace
# ----------------------------------------------------------------------


def make_instances(k: int, n: int, seed: int) -> List[Dict[str, Any]]:
    """K distinct solvable request payload templates (graph+demands)."""
    from repro.graph.generators import planted_partition, random_demands
    from repro.hierarchy.hierarchy import Hierarchy

    hier = Hierarchy(list(DEGREES), list(CM))
    out = []
    for i in range(k):
        g = planted_partition(4, max(2, n // 4), 0.8, 0.05, seed=seed + i)
        d = random_demands(
            g.n, hier.total_capacity, fill=0.5, skew=0.3, seed=seed + i
        )
        out.append(
            {
                "graph": {
                    "n": g.n,
                    "edges": [
                        [int(u), int(v), float(w)]
                        for u, v, w in zip(g.edges_u, g.edges_v, g.edges_w)
                    ],
                },
                "hierarchy": {
                    "degrees": list(DEGREES),
                    "cm": list(CM),
                    "leaf_capacity": 1.0,
                },
                "demands": [float(x) for x in d],
            }
        )
    return out


def make_trace(
    n_requests: int,
    instances: int,
    dup_frac: float,
    interactive_frac: float,
    seed: int,
) -> List[Dict[str, Any]]:
    """The request schedule: which instance + lane per arrival.

    ``dup_frac`` of arrivals re-ask instance 0 byte-identically (the
    hot key — coalescing/cache fodder); every other arrival is a
    *unique* piece of work (``perturb`` keys a deterministic demand
    shuffle, see :func:`perturb_demands`), so the server's solve
    capacity is genuinely consumed and overload is real.
    """
    import random

    rng = random.Random(seed)
    trace = []
    for i in range(n_requests):
        if instances == 1 or rng.random() < dup_frac:
            inst, perturb = 0, 0
        else:
            inst, perturb = 1 + (i % (instances - 1)), 1 + i
        lane = "interactive" if rng.random() < interactive_frac else "batch"
        trace.append({"instance": inst, "lane": lane, "perturb": perturb})
    return trace


def perturb_demands(payload: Dict[str, Any], perturb: int) -> Dict[str, Any]:
    """A copy of ``payload`` with a ``perturb``-keyed demand shuffle.

    Shuffling preserves the demand sum (still feasible) but changes the
    cache key, so each perturbed request is distinct solve work.
    ``perturb=0`` returns the payload untouched (the hot key).
    """
    import random

    if not perturb:
        return dict(payload)
    out = dict(payload)
    demands = list(out["demands"])
    random.Random(perturb).shuffle(demands)
    out["demands"] = demands
    return out


# ----------------------------------------------------------------------
# open-loop runner
# ----------------------------------------------------------------------


@dataclass
class LoadResult:
    """Everything one load run observed, plus derived summaries."""

    sent: int = 0
    completed: List[Dict[str, Any]] = field(default_factory=list)
    errors: int = 0
    wall_s: float = 0.0

    def by_code(self) -> Dict[str, int]:
        codes: Dict[str, int] = {}
        for r in self.completed:
            codes[str(r["status"])] = codes.get(str(r["status"]), 0) + 1
        return codes

    def latencies(self, lane: Optional[str] = None) -> List[float]:
        return sorted(
            r["latency_s"]
            for r in self.completed
            if lane is None or r["lane"] == lane
        )

    @staticmethod
    def _quantile(xs: List[float], q: float) -> float:
        if not xs:
            return 0.0
        idx = min(len(xs) - 1, max(0, int(round(q * (len(xs) - 1)))))
        return xs[idx]

    def summary(self) -> Dict[str, Any]:
        codes = self.by_code()
        served = [r for r in self.completed if r["status"] == 200]
        deduped = [
            r for r in served if r["served_from"] in ("coalesced", "cache")
        ]
        out: Dict[str, Any] = {
            "sent": self.sent,
            "completed": len(self.completed),
            "errors": self.errors,
            "wall_s": round(self.wall_s, 3),
            "qps_sent": round(self.sent / max(self.wall_s, 1e-9), 2),
            "qps_ok": round(len(served) / max(self.wall_s, 1e-9), 2),
            "codes": codes,
            "shed": codes.get("503", 0),
            "shed_rate": round(
                codes.get("503", 0) / max(1, len(self.completed)), 4
            ),
            "dedupe_rate": round(len(deduped) / max(1, len(served)), 4),
        }
        for lane in ("interactive", "batch"):
            xs = self.latencies(lane)
            out[f"{lane}_n"] = len(xs)
            out[f"{lane}_p50_s"] = round(self._quantile(xs, 0.5), 4)
            out[f"{lane}_p99_s"] = round(self._quantile(xs, 0.99), 4)
        return out


def run_load(
    url: str,
    payloads: List[Dict[str, Any]],
    trace: List[Dict[str, Any]],
    rate_qps: float,
    deadline_s: Optional[float] = 10.0,
    timeout_s: float = 60.0,
) -> LoadResult:
    """Fire ``trace`` at ``rate_qps`` open-loop; block until all done.

    One thread per in-flight request (arrivals never wait on
    completions); per-request wall latency is measured from its
    *scheduled* send time, so queueing delay the server induces is
    charged to the server, not hidden by a slow sender.
    """
    result = LoadResult()
    lock = threading.Lock()
    threads: List[threading.Thread] = []
    start = time.monotonic()

    def fire(spec: Dict[str, Any], at: float) -> None:
        client = PlacementClient(url, timeout=timeout_s)
        payload = perturb_demands(
            payloads[spec["instance"]], spec.get("perturb", 0)
        )
        payload["priority"] = spec["lane"]
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        t0 = time.monotonic()
        try:
            resp = client.solve_raw(payload)
            rec = {
                "status": resp.status,
                "lane": spec["lane"],
                "instance": spec["instance"],
                "served_from": resp.served_from,
                "latency_s": time.monotonic() - at,
                "send_to_reply_s": time.monotonic() - t0,
            }
            with lock:
                result.completed.append(rec)
        except ServeUnavailableError:
            with lock:
                result.errors += 1

    gap = 1.0 / max(rate_qps, 1e-9)
    for i, spec in enumerate(trace):
        at = start + i * gap
        delay = at - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        th = threading.Thread(target=fire, args=(spec, at), daemon=True)
        th.start()
        threads.append(th)
        result.sent += 1
    for th in threads:
        th.join(timeout=timeout_s)
    result.wall_s = time.monotonic() - start
    return result


# ----------------------------------------------------------------------
# smoke mode
# ----------------------------------------------------------------------


def _spawn_server(args, fault_spec: Optional[str]) -> "subprocess.Popen":
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    if fault_spec:
        env["REPRO_FAULT_SPEC"] = fault_spec
    else:
        env.pop("REPRO_FAULT_SPEC", None)
    cmd = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--port",
        "0",
        "--jobs",
        str(args.jobs),
        "--n-trees",
        str(args.n_trees),
        "--seed",
        str(args.seed),
        "--queue-capacity",
        str(args.queue_capacity),
        "--retries",
        "2",
    ]
    if args.no_response_cache:
        cmd.append("--no-response-cache")
    return subprocess.Popen(
        cmd, env=env, stderr=subprocess.PIPE, text=True, cwd=str(REPO_ROOT)
    )


def _read_url(proc) -> str:
    line = proc.stderr.readline()
    if "listening on" not in line:
        raise RuntimeError(f"server failed to start: {line!r}")
    return line.strip().split()[-1]


def _reference_solution(payload: Dict[str, Any], args) -> Dict[str, Any]:
    """Cold in-process solve of one loadgen instance (fault-free)."""
    import numpy as np

    from repro.core.config import SolverConfig
    from repro.core.engine import run_pipeline
    from repro.graph.graph import Graph
    from repro.hierarchy.hierarchy import Hierarchy

    g = Graph(
        payload["graph"]["n"],
        [tuple(e) for e in payload["graph"]["edges"]],
    )
    hier = Hierarchy(
        payload["hierarchy"]["degrees"],
        payload["hierarchy"]["cm"],
        leaf_capacity=payload["hierarchy"]["leaf_capacity"],
    )
    d = np.asarray(payload["demands"], dtype=np.float64)
    cfg = SolverConfig(seed=args.seed, n_trees=args.n_trees, n_jobs=1)
    result = run_pipeline(g, hier, d, cfg, path="batch")
    return {
        "cost": result.cost,
        "leaf_of": result.placement.leaf_of.tolist(),
    }


def run_smoke(args) -> int:
    """Spawn, storm, assert the robustness contract; 0 = all held."""
    fault_spec = os.environ.pop("REPRO_FAULT_SPEC", None)
    if fault_spec:
        print(f"smoke: forwarding REPRO_FAULT_SPEC={fault_spec!r} to the server")
    proc = _spawn_server(args, fault_spec)
    failures: List[str] = []
    try:
        url = _read_url(proc)
        print(f"smoke: server at {url}")
        client = PlacementClient(url, timeout=60.0)
        payloads = make_instances(args.instances, args.n, args.seed)

        # Measure warm solve capacity with *distinct* sequential probes
        # (negative perturb keys can't collide with the trace, so none
        # of these hit the response cache).  Probe 0 also warms the
        # pool, so drop it from the average.
        t_probe = []
        for j in range(4):
            probe = perturb_demands(payloads[0], -(j + 1))
            probe["deadline_s"] = 60.0
            t0 = time.monotonic()
            resp = client.solve_raw(probe)
            t_probe.append(time.monotonic() - t0)
            if resp.status != 200:
                failures.append(f"warmup probe failed with {resp.status}")
                break
        solve_s = max(5e-3, sum(t_probe[1:]) / max(1, len(t_probe) - 1))
        # Overload is defined on *unique* work: duplicates coalesce or
        # hit the response cache, so only the non-dup fraction consumes
        # dispatcher capacity.
        unique_frac = max(0.05, 1.0 - args.dup_frac)
        rate = min(
            args.max_rate, args.overload_factor / solve_s / unique_frac
        )
        n_requests = max(8, int(rate * args.duration))
        print(
            f"smoke: warm solve ~{solve_s * 1e3:.0f} ms -> storming at "
            f"{rate:.1f} qps (~{args.overload_factor:.0f}x capacity on "
            f"unique work), {n_requests} requests over ~{args.duration:.0f}s"
        )
        trace = make_trace(
            n_requests, args.instances, args.dup_frac,
            args.interactive_frac, args.seed,
        )
        load = run_load(
            url, payloads, trace, rate, deadline_s=args.deadline,
            timeout_s=120.0,
        )
        summary = load.summary()
        print("smoke:", json.dumps(summary, sort_keys=True))

        # 1. zero process deaths
        if proc.poll() is not None:
            failures.append(f"server process died (exit {proc.returncode})")
        else:
            # 2. healthz answers after the storm
            try:
                hz = client.healthz()
                if hz.status != 200:
                    failures.append(f"post-storm healthz returned {hz.status}")
            except ServeUnavailableError as exc:
                failures.append(f"post-storm healthz unreachable: {exc}")
            # 3. overload shed instead of crashing
            if summary["shed"] == 0 and args.expect_sheds:
                failures.append(
                    "no 503s under ~2x overload (admission control inert?)"
                )
            if summary["errors"] > load.sent * 0.05:
                failures.append(
                    f"{summary['errors']} transport errors (connections "
                    "refused/reset) — server stopped accepting"
                )
            # 4. post-recovery response bit-identical to a cold solve
            fresh = dict(payloads[0])
            fresh["deadline_s"] = 60.0
            resp = client.solve_raw(fresh)
            if resp.status != 200:
                failures.append(
                    f"post-recovery solve returned {resp.status}"
                )
            else:
                got = resp.json()
                ref = _reference_solution(payloads[0], args)
                if got["cost"] != ref["cost"] or got["leaf_of"] != ref["leaf_of"]:
                    failures.append(
                        "post-recovery response drifted from the cold "
                        f"solve (cost {got['cost']} vs {ref['cost']})"
                    )
                else:
                    print("smoke: post-recovery response bit-identical "
                          "to the cold solve")
        if args.out:
            Path(args.out).write_text(json.dumps(summary, indent=2) + "\n")
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                failures.append("server did not drain within 60s of SIGTERM")
    for f in failures:
        print(f"SMOKE FAILURE: {f}", file=sys.stderr)
    if not failures:
        print("smoke: all robustness assertions held")
    return 1 if failures else 0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    p.add_argument("--url", default=None, help="target server (no --smoke)")
    p.add_argument("--smoke", action="store_true",
                   help="spawn a server, storm it, assert recovery")
    p.add_argument("--duration", type=float, default=10.0)
    p.add_argument("--rate", type=float, default=None,
                   help="arrival rate qps (default in --smoke: 2x capacity)")
    p.add_argument("--overload-factor", type=float, default=2.0)
    p.add_argument("--max-rate", type=float, default=300.0,
                   help="cap on the computed smoke arrival rate (qps)")
    p.add_argument("--instances", type=int, default=4,
                   help="distinct problem instances in the trace")
    p.add_argument("--dup-frac", type=float, default=0.5,
                   help="fraction of arrivals re-asking the hot instance")
    p.add_argument("--interactive-frac", type=float, default=0.7)
    p.add_argument("--deadline", type=float, default=30.0,
                   help="per-request SLO (seconds)")
    p.add_argument("--n", type=int, default=32, help="vertices per instance")
    p.add_argument("--n-trees", type=int, default=2)
    p.add_argument("--jobs", type=int, default=2)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--queue-capacity", type=int, default=8)
    p.add_argument("--no-response-cache", action="store_true")
    p.add_argument("--expect-sheds", action="store_true",
                   help="fail the smoke if no 503s were observed")
    p.add_argument("--out", default=None, help="write the JSON summary here")
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.smoke:
        return run_smoke(args)
    if not args.url:
        print("error: need --url or --smoke", file=sys.stderr)
        return 2
    payloads = make_instances(args.instances, args.n, args.seed)
    rate = args.rate if args.rate is not None else 5.0
    n_requests = max(1, int(rate * args.duration))
    trace = make_trace(
        n_requests, args.instances, args.dup_frac,
        args.interactive_frac, args.seed,
    )
    load = run_load(args.url, payloads, trace, rate, deadline_s=args.deadline)
    summary = load.summary()
    print(json.dumps(summary, indent=2, sort_keys=True))
    if args.out:
        Path(args.out).write_text(json.dumps(summary, indent=2) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
